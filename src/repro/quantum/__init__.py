"""Batched statevector quantum simulator.

This subpackage replaces PennyLane's ``default.qubit`` device for the
paper's experiments: gate definitions (:mod:`~repro.quantum.gates`),
batched state algebra (:mod:`~repro.quantum.state`), tape representation
and execution (:mod:`~repro.quantum.circuit`), the paper's three templates
(:mod:`~repro.quantum.templates`), Z-expectation measurements
(:mod:`~repro.quantum.measurements`) and two exact differentiation
backends (:mod:`~repro.quantum.adjoint`,
:mod:`~repro.quantum.parameter_shift`).

Production execution goes through the compiled engine
(:mod:`~repro.quantum.engine`): compile a circuit's structure once with
:class:`~repro.quantum.engine.CompiledTape`, then execute it many times
with only parameter values changing.  The tape-walking reference
executor (:func:`~repro.quantum.circuit.run`) remains the semantics
oracle the engine is differentially tested against.
"""

from . import gates
from .adjoint import adjoint_gradients
from .engine import (
    CompiledTape,
    compile_cache_info,
    compiled_tape,
    disable_compile_cache,
    enable_compile_cache,
)
from .circuit import (
    GATE_SET,
    Operation,
    ParamRef,
    input_ref,
    run,
    shift_parameter,
    tape_summary,
    weight_ref,
)
from .measurements import (
    apply_z_linear_combination,
    expval_z,
    marginal_probabilities,
)
from .parameter_shift import (
    compiled_parameter_shift_gradients,
    count_shifted_executions,
    parameter_shift_gradients,
)
from .state import (
    abs2,
    apply_cnot,
    apply_cz,
    apply_single_qubit,
    apply_two_qubit,
    as_matrix,
    basis_state,
    norms,
    num_qubits,
    probabilities,
    zero_state,
)
from .templates import (
    angle_embedding,
    angle_embedding_structure,
    basic_entangler_layers,
    bel_param_count,
    bel_weight_shape,
    random_bel_weights,
    random_sel_weights,
    sel_param_count,
    sel_ranges,
    sel_weight_shape,
    strongly_entangling_layers,
)

__all__ = [
    "gates",
    "GATE_SET",
    "Operation",
    "ParamRef",
    "input_ref",
    "weight_ref",
    "run",
    "shift_parameter",
    "tape_summary",
    "adjoint_gradients",
    "CompiledTape",
    "compiled_tape",
    "enable_compile_cache",
    "disable_compile_cache",
    "compile_cache_info",
    "parameter_shift_gradients",
    "compiled_parameter_shift_gradients",
    "count_shifted_executions",
    "expval_z",
    "apply_z_linear_combination",
    "marginal_probabilities",
    "zero_state",
    "basis_state",
    "num_qubits",
    "as_matrix",
    "apply_single_qubit",
    "apply_two_qubit",
    "apply_cnot",
    "apply_cz",
    "abs2",
    "norms",
    "probabilities",
    "angle_embedding",
    "angle_embedding_structure",
    "basic_entangler_layers",
    "strongly_entangling_layers",
    "bel_weight_shape",
    "sel_weight_shape",
    "bel_param_count",
    "sel_param_count",
    "sel_ranges",
    "random_bel_weights",
    "random_sel_weights",
]
