"""Compiled circuit execution engine: compile once, execute many times.

The reference executor (:func:`repro.quantum.circuit.run`) walks a tape of
:class:`~repro.quantum.circuit.Operation` objects, rebuilding each gate's
matrix and paying a ``moveaxis`` round-trip (two full-state copies) per
gate application.  That is the right *reference* semantics but the wrong
cost model for training: the paper's protocol executes the same circuit
structure thousands of times per grid-search cell with only the parameter
values changing.

:class:`CompiledTape` separates the two phases:

**Compile (once per circuit structure).**  The tape is analysed into a
flat instruction program:

* fixed-gate matrices are built once and cached;
* runs of single-qubit gates acting on the same wire (with no intervening
  multi-qubit gate touching that wire) are fused into one 2x2 — or
  batched ``(B, 2, 2)`` — matrix, so e.g. an encoding rotation and the
  first ansatz rotation on each wire cost a single kernel application;
* CNOT / SWAP become precomputed full-register index permutations and CZ
  becomes an in-place sign flip of a precomputed index set — no
  floating-point matrix arithmetic and no ``state.copy()``;
* *runs* of consecutive permutation gates — an ansatz layer's whole CNOT
  ring — are composed into a **single** fused permutation (pending
  single-qubit fusions are hoisted across the ring, which is sound
  because they commute with every ring gate before their wire's first
  use), so a ring costs one ``np.take`` in the forward *and* in the
  adjoint sweep;
* per-wire reshape factors are precomputed so single-qubit kernels act on
  a flat ``(B, 2**n)`` buffer through free ``(B, left, 2, right)``
  reshape views instead of ``moveaxis`` copies; batched matrices on the
  last wire take a ~2x faster broadcast-``matmul`` path (see the kernel
  note below).

**Execute (per batch / parameter binding).**  ``execute`` binds parameter
values into the compiled slots — data features through ``input``
:class:`~repro.quantum.circuit.ParamRef` slots, trainable angles through
``weight`` slots — computes all dynamic gate matrices in one vectorised
call per gate type, and then streams the instruction program over a pair
of preallocated ping-pong buffers.  No per-gate allocation happens on the
hot path.  The compiled adjoint sweep (``adjoint_gradients``) reuses the
recorded forward matrices and two more pooled buffers (bra, bra scratch)
across the whole reversed tape; each gate's gradient contraction runs
over all of its parameters in one vectorised einsum (the ``Rot`` gate's
three angles cost one contraction, not three).

**Run-stacked execution (one sweep for R parameter sets).**  The paper's
protocol trains every candidate ``runs`` times with an *identical*
circuit structure — only the seed-derived weights differ — so
``execute`` also accepts a stacked 2-D ``weights`` of shape
``(runs, n_weights)`` together with ``runs=R`` and a fused
``(runs * batch, n_features)`` input whose rows are run-major.  Weight
slots then bind one value *per run*: their gate matrices are built as a
``(R, k, k)`` stack (R matrices instead of R*B) and applied through
per-run kernels that view the flat ``(R*B, 2**n)`` buffer as
``(R, B*left, 2, right)`` — a 3-operand einsum, or a broadcast
``matmul`` on the last wire.  The adjoint sweep mirrors this: derivative
stacks for per-run weights are ``(P, R, k, k)`` and weight gradients
come back per run, shape ``(R, n_weights)``.  Per-sample arithmetic is
identical to ``R`` independent executions (the kernels contract the same
two-element axes in the same order), which is what makes
``vectorized_runs`` grid searches bit-identical to per-run ones.

For search workloads that rebuild structurally identical circuits over
and over, :func:`compiled_tape` + :func:`enable_compile_cache` share one
engine per circuit structure per process (the parallel runtime enables
this in every worker).

The engine is differentially tested against the reference executor and
:func:`repro.quantum.adjoint.adjoint_gradients` to 1e-12
(``tests/quantum/test_engine.py``); the reference implementations remain
the semantics oracle.

Contract notes:

* Buffers are owned by the engine and reused: the array returned by a
  plain ``execute`` is only valid until the next ``execute`` call.  Copy
  it (or use :meth:`CompiledTape.run`) if you need it to survive.
* ``execute(record=True)`` keeps the bound matrices and final state for
  a subsequent ``adjoint_gradients`` call; the recorded state owns its
  buffers, so it survives intervening (e.g. evaluation) executes.  The
  adjoint call releases the record when done — and buffer pools are
  bounded to a few batch sizes — so long training runs do not pin the
  largest batch in memory.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..backends import COMPLEX_DTYPE, REAL_DTYPE, ArrayBackend, get_backend
from ..exceptions import ConfigurationError, GateError, ShapeError
from .circuit import GATE_SET, Operation
from .state import apply_two_qubit

__all__ = [
    "CompiledTape",
    "compiled_tape",
    "enable_compile_cache",
    "disable_compile_cache",
    "compile_cache_info",
]

#: Buffer pools are kept for at most this many distinct batch sizes; the
#: least recently used pool is evicted beyond that.  Bounds the memory a
#: long-lived engine pins when it alternates minibatch training with
#: full-dataset evaluation batches.
_MAX_POOLS = 4

#: Kernel-selection note (small-operand specialization).  Three
#: single-qubit kernel strategies were benchmarked head-to-head on tiny
#: operands (batch <= 16, 3-5 qubits), where per-call dispatch overhead
#: rivals the arithmetic: (a) ``np.einsum`` with ``out=``, (b) manual
#: slice arithmetic over the wire's half-spaces, (c) broadcast
#: ``np.matmul``.  On NumPy 2.4 einsum's two-operand fast path makes (b)
#: ~2x *slower* (six small ufunc dispatches vs one), so no slice kernel
#: exists here.  The one measured gap is batched ``(B, 2, 2)`` matrices
#: on the last wire (contraction over the trailing axis, ``right == 1``),
#: where einsum falls off its fast path and (c) wins ~2x at every batch
#: size; ``_apply_1q`` special-cases exactly that shape.

# Instruction opcodes for the forward program.
_F1Q = 0        # fused single-qubit gate, matrix precomputed at compile
_F1Q_DYN = 1    # fused single-qubit gate, matrix combined per execution
_FPERM = 2      # full-register index permutation (CNOT, SWAP)
_FNEG = 3       # in-place sign flip of an index subset (CZ)
_F2Q = 4        # general two-qubit matrix, precomputed
_F2Q_DYN = 5    # general two-qubit matrix, bound per execution


class _OpSpec:
    """Per-operation compile-time record."""

    __slots__ = ("name", "wires", "info", "defaults", "refs", "dynamic")

    def __init__(self, op: Operation) -> None:
        self.name = op.name
        self.wires = op.wires
        self.info = op.info
        self.defaults = op.params
        self.refs = op.refs
        self.dynamic = any(r is not None for r in op.refs)


class CompiledTape:
    """A circuit compiled from its structure for repeated execution.

    Parameters
    ----------
    ops:
        The tape to compile.  Gate names, wires and ``ParamRef``s define
        the *structure*; the operations' parameter values become the
        defaults used when no binding is supplied (so
        ``CompiledTape(ops, n).run()`` reproduces ``circuit.run(ops, n)``
        exactly).
    n_qubits:
        Register width.
    backend:
        Optional :class:`~repro.backends.ArrayBackend` the hot kernels
        execute on (default: the NumPy backend — the bit-exact
        reference path).  Compilation is always host-side NumPy;
        execution state (ping-pong buffers, bound gate-matrix stacks)
        lives on the backend's device, and compile-time constants
        (fused permutations, sign tables, static matrices) are uploaded
        lazily once per engine.  See ``docs/backends.md``.
    """

    def __init__(
        self,
        ops: Sequence[Operation],
        n_qubits: int,
        backend: "ArrayBackend | None" = None,
    ) -> None:
        if n_qubits < 1:
            raise ShapeError(f"need at least one qubit, got {n_qubits}")
        self._xp = backend if backend is not None else get_backend("numpy")
        #: Device copies of compile-time constants, keyed by id() of the
        #: host array.  Only arrays owned by the (immutable, shared)
        #: compiled program are cached here, so keys can never be
        #: recycled while the engine lives; clones share the cache, so a
        #: constant uploads once per compilation, not once per layer.
        self._dev_cache: dict[int, object] = {}
        self.n_qubits = n_qubits
        self.dim = 2**n_qubits
        self._specs = [_OpSpec(op) for op in ops]
        self._validate_wires()

        # Wire w of the flat (B, 2**n) buffer factors as
        # (B, left, 2, right) with left = 2**w (wire 0 is the MSB).
        self._lr = [
            (2**w, 2 ** (n_qubits - 1 - w)) for w in range(n_qubits)
        ]

        # Z-expectation sign table: signs[w, k] = +1 if bit w of basis
        # index k is 0 else -1.  Turns expval/adjoint seeding into one
        # matmul against probabilities/amplitudes.
        ks = np.arange(self.dim)
        bits = (ks[None, :] >> (n_qubits - 1 - np.arange(n_qubits)[:, None])) & 1
        self._z_signs = (1.0 - 2.0 * bits).astype(REAL_DTYPE)

        self._static_mats: dict[int, np.ndarray] = {}
        self._dynamic: list[int] = []
        self._dyn_groups: dict[str, list[int]] = {}
        self._train_groups: dict[str, list[int]] = {}
        self._adjoint_unsupported: dict[int, str] = {}
        self._max_input = -1
        self._max_weight = -1
        # _default_batch: batch inferred when execute() gets no binding
        # (any batched default).  _fixed_batch: hard constraint coming
        # from batched parameters of *static* ops, whose matrices are
        # precomputed at compile time and cannot be rebound.
        self._default_batch = 1
        self._fixed_batch = 1
        self._classify()

        self._program: list[tuple] = []
        self._adj_program: list[tuple] = []
        self._compile_program()

        self._pools: dict[int, dict[str, list[np.ndarray]]] = {}
        self._last: dict | None = None

    # -- compilation -------------------------------------------------------

    def _validate_wires(self) -> None:
        for spec in self._specs:
            for w in spec.wires:
                if not 0 <= w < self.n_qubits:
                    raise ShapeError(
                        f"{spec.name} wire {w} out of range for "
                        f"{self.n_qubits} qubits"
                    )

    def _classify(self) -> None:
        for g, spec in enumerate(self._specs):
            for ref, dflt in zip(spec.refs, spec.defaults):
                if ref is not None:
                    if ref.kind == "input":
                        self._max_input = max(self._max_input, ref.index)
                    else:
                        self._max_weight = max(self._max_weight, ref.index)
                if dflt.ndim == 1 and dflt.shape[0] > 1:
                    if self._default_batch not in (1, dflt.shape[0]):
                        raise ShapeError(
                            f"inconsistent batched default parameters: "
                            f"{self._default_batch} vs {dflt.shape[0]}"
                        )
                    self._default_batch = dflt.shape[0]
                    if not spec.dynamic:
                        self._fixed_batch = dflt.shape[0]
            if spec.dynamic:
                self._dynamic.append(g)
                if spec.info.matrix_fn is not None:
                    self._dyn_groups.setdefault(spec.name, []).append(g)
                if len(spec.wires) != 1:
                    self._adjoint_unsupported[g] = (
                        f"adjoint differentiation supports single-qubit "
                        f"parametrized gates, got {spec.name} on {spec.wires}"
                    )
                elif spec.info.deriv_fn is None:
                    self._adjoint_unsupported[g] = (
                        f"{spec.name} has no derivative rule"
                    )
                else:
                    self._train_groups.setdefault(spec.name, []).append(g)
            elif spec.info.matrix_fn is not None and (
                spec.info.basis_perm is None and spec.info.basis_diag is None
            ):
                self._static_mats[g] = spec.info.matrix_fn(*spec.defaults)

    def _full_perm(self, basis_perm, wire_a: int, wire_b: int) -> np.ndarray:
        """Register-wide permutation: ``new[k] = old[perm[k]]``."""
        n = self.n_qubits
        sa, sb = n - 1 - wire_a, n - 1 - wire_b
        ks = np.arange(self.dim)
        j = (((ks >> sa) & 1) << 1) | ((ks >> sb) & 1)
        pj = np.asarray(basis_perm)[j]
        cleared = ks & ~((1 << sa) | (1 << sb))
        return cleared | ((pj >> 1) << sa) | ((pj & 1) << sb)

    def _negate_indices(self, basis_diag, wire_a: int, wire_b: int) -> np.ndarray:
        """Indices whose sign flips under a ``+-1`` diagonal gate."""
        n = self.n_qubits
        sa, sb = n - 1 - wire_a, n - 1 - wire_b
        ks = np.arange(self.dim)
        j = (((ks >> sa) & 1) << 1) | ((ks >> sb) & 1)
        return ks[np.asarray(basis_diag)[j] < 0]

    def _flush(self, pending: dict[int, list[int]], wire: int) -> None:
        members = pending.pop(wire, None)
        if not members:
            return
        if all(m in self._static_mats for m in members):
            mat = self._static_mats[members[0]]
            for m in members[1:]:
                mat = np.matmul(self._static_mats[m], mat)
            self._program.append((_F1Q, wire, mat))
        else:
            self._program.append((_F1Q_DYN, wire, tuple(members)))

    def _compile_program(self) -> None:
        pending: dict[int, list[int]] = {}
        n = len(self._specs)
        g = 0
        while g < n:
            spec = self._specs[g]
            info = spec.info
            if len(spec.wires) == 1 and info.matrix_fn is not None:
                pending.setdefault(spec.wires[0], []).append(g)
                self._adj_program.append(("m1", spec.wires[0]))
                g += 1
                continue
            if info.basis_perm is not None:
                # Maximal run of consecutive permutation gates (a CNOT
                # ring).  Flush every wire the run touches *up front*:
                # a pending single-qubit gate commutes with each ring
                # gate before its wire's first use, so hoisting the
                # flushes preserves semantics and leaves the
                # permutations adjacent for _fuse_permutations to merge
                # into a single take.
                end = g
                while (
                    end < n
                    and self._specs[end].info.basis_perm is not None
                ):
                    end += 1
                run_wires = {w for s in self._specs[g:end] for w in s.wires}
                for w in sorted(run_wires):
                    self._flush(pending, w)
                for h in range(g, end):
                    s = self._specs[h]
                    perm = self._full_perm(s.info.basis_perm, *s.wires)
                    self._program.append((_FPERM, perm))
                    self._adj_program.append(("perm", perm, np.argsort(perm)))
                g = end
                continue
            for w in spec.wires:
                self._flush(pending, w)
            wa, wb = spec.wires
            if info.basis_diag is not None:
                idx = self._negate_indices(info.basis_diag, wa, wb)
                self._program.append((_FNEG, idx))
                self._adj_program.append(("neg", idx))
            elif g in self._static_mats:
                self._program.append((_F2Q, wa, wb, self._static_mats[g]))
                self._adj_program.append(("m2", wa, wb))
            else:
                self._program.append((_F2Q_DYN, wa, wb, g))
                self._adj_program.append(("m2", wa, wb))
            g += 1
        for w in sorted(pending):
            self._flush(pending, w)
        self._fuse_permutations()

    def _fuse_permutations(self) -> None:
        """Collapse runs of index-permutation gates into one permutation.

        An ansatz layer's CNOT ring compiles to ``n_qubits`` consecutive
        ``_FPERM`` instructions; composing them at compile time turns the
        whole ring into a single ``np.take``.  Applying permutation ``a``
        then ``b`` is ``a[b]`` (``s2[k] = s1[b[k]] = s0[a[b[k]]]``).

        The adjoint program gets the same treatment: a maximal run of
        consecutive ``perm`` steps (permutation gates carry no parameters,
        so no derivative is ever injected inside the run) is replaced by
        one fused step at the run's *last* op — the first one the reversed
        sweep reaches — and ``skip`` markers elsewhere.
        """
        fused: list[tuple] = []
        for instr in self._program:
            if instr[0] == _FPERM and fused and fused[-1][0] == _FPERM:
                fused[-1] = (_FPERM, fused[-1][1][instr[1]])
            else:
                fused.append(instr)
        self._program = fused

        adj = self._adj_program
        g = 0
        while g < len(adj):
            if adj[g][0] != "perm":
                g += 1
                continue
            start = g
            comb = adj[g][1]
            g += 1
            while g < len(adj) and adj[g][0] == "perm":
                comb = comb[adj[g][1]]
                g += 1
            if g - start > 1:
                for s in range(start, g - 1):
                    adj[s] = ("skip",)
                adj[g - 1] = ("perm", comb, np.argsort(comb))

    def clone(self) -> "CompiledTape":
        """A new engine sharing this one's (immutable) compiled program.

        The compiled artefacts — op specs, instruction programs, fused
        permutations, static/classified matrices, sign tables — are
        shared by reference; execution state (buffer pools, the recorded
        forward) starts fresh.  This is how the compile cache hands the
        same compilation to many live layers without any state hazard:
        compiling is the expensive part, the clone is a dict copy.
        """
        twin = object.__new__(CompiledTape)
        twin.__dict__.update(self.__dict__)
        twin._pools = {}
        twin._last = None
        return twin

    # -- backend plumbing --------------------------------------------------

    @property
    def backend(self) -> ArrayBackend:
        """The array backend this engine's hot kernels execute on."""
        return self._xp

    def _dev(self, arr):
        """Device copy of a *compile-time constant* array (cached).

        Identity on the NumPy backend.  Callers must only pass arrays
        owned by the compiled program (static/fused matrices, sign
        tables): the cache is keyed by ``id()``, which is only stable
        for arrays that live as long as the engine.
        """
        if self._xp.is_numpy:
            return arr
        key = id(arr)
        dev = self._dev_cache.get(key)
        if dev is None:
            dev = self._dev_cache[key] = self._xp.asarray(arr)
        return dev

    def _dev_idx(self, arr):
        """Like :meth:`_dev` but for integer index tables (permutations,
        sign-flip index sets)."""
        if self._xp.is_numpy:
            return arr
        key = id(arr)
        dev = self._dev_cache.get(key)
        if dev is None:
            dev = self._dev_cache[key] = self._xp.index_const(arr)
        return dev

    def _upload_mats(self, mats: dict) -> dict:
        """Move freshly bound single-qubit matrix stacks on-device.

        No-op on the NumPy backend.  Two-qubit (``k == 4``) matrices
        stay host-side: the general two-qubit kernel round-trips through
        the reference NumPy implementation (see :meth:`_apply_2q`), so
        uploading them would only add transfers.
        """
        if self._xp.is_numpy:
            return mats
        out = {}
        for g, entry in mats.items():
            if isinstance(entry, tuple):
                out[g] = tuple(
                    self._xp.asarray(m) if m.shape[-1] == 2 else m
                    for m in entry
                )
            else:
                out[g] = (
                    self._xp.asarray(entry)
                    if entry.shape[-1] == 2
                    else entry
                )
        return out

    # -- introspection -----------------------------------------------------

    @property
    def n_ops(self) -> int:
        """Number of operations in the source tape."""
        return len(self._specs)

    @property
    def n_instructions(self) -> int:
        """Number of compiled forward instructions (after fusion)."""
        return len(self._program)

    @property
    def has_record(self) -> bool:
        """Whether a recorded forward execution is pending a backward."""
        return self._last is not None

    def referenced_params(self) -> list[tuple[int, int, object]]:
        """All ``(op_index, param_index, ref)`` triples with a live ref."""
        out = []
        for g, spec in enumerate(self._specs):
            for p, ref in enumerate(spec.refs):
                if ref is not None:
                    out.append((g, p, ref))
        return out

    @property
    def shift_stackable(self) -> bool:
        """Whether all 2P parameter-shifted executions of this tape can
        run as one run-stacked sweep.

        Requires every referenced parameter to sit on a single-qubit
        gate (the per-run kernels — and their bit-identity to separate
        executions — only exist for single-qubit matrices) and no
        baked-in batched default parameters (their batch would conflict
        with the fused ``2P * B`` one).
        """
        if self._default_batch > 1 or self._fixed_batch > 1:
            return False
        return all(
            len(self._specs[g].wires) == 1
            for g, _, _ in self.referenced_params()
        )

    # -- parameter binding -------------------------------------------------

    def _resolve_batch(self, inputs, batch) -> int:
        if inputs is not None:
            if batch is not None and batch != inputs.shape[0]:
                raise ShapeError(
                    f"batch {batch} != inputs batch {inputs.shape[0]}"
                )
            return inputs.shape[0]
        if batch is not None:
            return batch
        return self._default_batch

    def _resolve_values(
        self, inputs, weights, batch, shifts, runs=None
    ) -> tuple[dict[int, list[np.ndarray]], set[int]]:
        """Bind every dynamic op's parameter values for this execution.

        Each value is a scalar (shared by the whole batch), a per-sample
        ``(batch,)`` vector (``input`` refs), or — in run-stacked mode
        with 2-D ``weights`` — a per-run ``(runs,)`` vector.  Per-run
        values of multi-qubit gates are expanded to per-sample up front:
        only the single-qubit kernels have a dedicated per-run path.

        Also returns the set of *run-stacked* op indices — ops whose 1-D
        values are all per-run.  Shapes alone cannot identify them (with
        one sample per run, ``runs == batch``), so the per-run kernel
        choice is keyed on this set, not on array shapes.
        """
        stacked = weights is not None and weights.ndim == 2
        values: dict[int, list[np.ndarray]] = {}
        run_ops: set[int] = set()
        for g in self._dynamic:
            spec = self._specs[g]
            vals = []
            per_run = stacked and len(spec.wires) == 1
            for p, ref in enumerate(spec.refs):
                if ref is not None and ref.kind == "input" and inputs is not None:
                    v = inputs[:, ref.index]
                elif (
                    ref is not None
                    and ref.kind == "weight"
                    and weights is not None
                ):
                    if stacked:
                        v = weights[:, ref.index]
                        if len(spec.wires) != 1:
                            v = np.repeat(v, batch // runs)
                    else:
                        v = weights[ref.index]
                else:
                    v = spec.defaults[p]
                if v.ndim == 1 and v.shape[0] != batch and v.shape[0] != runs:
                    raise ShapeError(
                        f"{spec.name} parameter batch {v.shape[0]} != "
                        f"execution batch {batch}"
                    )
                if per_run and v.ndim == 1 and not (
                    ref is not None and ref.kind == "weight"
                ):
                    # A per-sample value (input ref or batched default)
                    # forces this op onto the per-sample path; its
                    # stacked weights expand there.
                    per_run = False
                if shifts is not None:
                    delta = shifts.get((g, p))
                    if delta is not None:
                        delta = np.asarray(delta)
                        if (
                            delta.ndim == 1
                            and runs is not None
                            and v.ndim == 1
                            and v.shape[0] == batch
                            and batch != runs
                        ):
                            # A per-run (runs,) shift vector meeting a
                            # per-sample value (input refs, expanded
                            # multi-qubit weights): expand run-major so
                            # each run's rows see their own delta.
                            delta = np.repeat(delta, batch // runs)
                        v = v + delta
                vals.append(v)
            values[g] = vals
            if per_run and any(v.ndim == 1 for v in vals):
                run_ops.add(g)
        return values, run_ops

    def _grouped_matrices(
        self,
        groups: Mapping[str, list[int]],
        values: Mapping[int, list[np.ndarray]],
        batch: int,
        deriv: bool = False,
        run_ops: set[int] | frozenset[int] = frozenset(),
    ) -> dict[int, tuple[np.ndarray, ...] | np.ndarray]:
        """Vectorised matrix construction: one builder call per gate type
        and stacking width.

        Ops of one gate type are partitioned by the *effective length* of
        their bound values — 1 (scalar parameters, one shared matrix),
        ``runs`` (run-stacked weights, an ``(R, k, k)`` stack) or
        ``batch`` (per-sample inputs, a ``(B, k, k)`` stack) — and each
        partition costs one builder call.  Returns a 1-tuple holding the
        gate matrix per op, or — for ``deriv=True`` — one stacked
        ``(P, [L,] k, k)`` array of the op's per-parameter derivative
        matrices.

        Run-stacked ops (``run_ops``) get their matrices tagged with an
        extra singleton axis — ``(R, 1, k, k)``, derivs
        ``(P, R, 1, k, k)`` — so the kernels can tell a per-run stack
        from a per-sample one even when ``runs == batch``.
        """
        out: dict[int, tuple[np.ndarray, ...] | np.ndarray] = {}
        for name, group in groups.items():
            info = GATE_SET[name]
            fn = info.deriv_fn if deriv else info.matrix_fn
            n_p = info.n_params
            # Partition key: (0, False) for all-scalar ops (one shared
            # matrix), else the stacking width and per-run flag (a
            # batch-1 execution's (1,)-vectors stay on the stacked path).
            partitions: dict[tuple[int, bool], list[int]] = {}
            for g in group:
                lengths = [v.shape[0] for v in values[g] if v.ndim == 1]
                key = (max(lengths) if lengths else 0, g in run_ops)
                partitions.setdefault(key, []).append(g)
            for (eff, per_run), part in partitions.items():
                cols = [[values[g][p] for g in part] for p in range(n_p)]
                if eff:
                    args = []
                    for col in cols:
                        a = np.empty((len(part), eff))
                        for i, v in enumerate(col):
                            if v.ndim == 1 and v.shape[0] != eff:
                                # A per-run value inside a per-sample op
                                # (mixed refs): expand run-major.
                                v = np.repeat(v, eff // v.shape[0])
                            a[i] = v
                        args.append(a.reshape(-1))
                else:
                    args = [np.array(col, dtype=REAL_DTYPE) for col in cols]
                result = fn(*args)
                if not isinstance(result, tuple):
                    result = (result,)
                per_op: list[np.ndarray] = []
                for mats in result:
                    k = mats.shape[-1]
                    if eff:
                        if per_run:
                            mats = mats.reshape(len(part), eff, 1, k, k)
                        else:
                            mats = mats.reshape(len(part), eff, k, k)
                    per_op.append(mats)
                if deriv:
                    # Stack the per-parameter derivative matrices into one
                    # (P, [L,] k, k) array per op so the adjoint sweep can
                    # contract all of a gate's parameters in a single
                    # einsum.
                    for i, g in enumerate(part):
                        out[g] = np.stack([mats[i] for mats in per_op])
                else:
                    for i, g in enumerate(part):
                        out[g] = tuple(mats[i] for mats in per_op)
        return out

    def _mat_of(self, g: int, mats: Mapping[int, tuple]) -> np.ndarray:
        entry = mats.get(g)
        if entry is not None:
            return entry[0]
        mat = self._static_mats[g]
        # Single-qubit static matrices feed the device kernels; the
        # general two-qubit kernel stays host-side (see _apply_2q).
        if mat.shape[-1] == 2:
            return self._dev(mat)
        return mat

    # -- buffers -----------------------------------------------------------

    def _buffers(self, batch: int, kind: str, count: int) -> list[np.ndarray]:
        pool = self._pools.get(batch)
        if pool is None:
            pool = self._pools[batch] = {}
        else:
            # Move to the end: dicts preserve insertion order, so the
            # first key is always the least recently used pool.
            self._pools[batch] = self._pools.pop(batch)
        while len(self._pools) > _MAX_POOLS:
            del self._pools[next(iter(self._pools))]
        bufs = pool.get(kind)
        if bufs is None:
            bufs = [
                self._xp.empty((batch, self.dim), dtype=self._xp.complex_dtype)
                for _ in range(count)
            ]
            pool[kind] = bufs
        return bufs

    def peak_bytes(
        self, batch: int, runs: "int | None" = None, mode: str = "forward"
    ) -> int:
        """Predicted peak working-set bytes of one execution.

        An analytic upper envelope over the engine's allocations for a
        ``(batch, 2**n)`` sweep — the memory-governance layer sizes
        group admissions against it (see :mod:`repro.runtime.memory`).
        Counted per mode:

        * ``"forward"``: the ping-pong statevector pair.
        * ``"adjoint"``: the forward pair, the recorded forward
          (``record=True`` detaches its own pair so it survives
          intervening executes), the bra/bra-scratch adjoint pair, and
          the per-op derivative stacks for every trainable group.

        Both modes add the bound dynamic gate-matrix stacks: per-sample
        ops (``input`` refs) bind a ``(batch, k, k)`` stack, per-run
        weight ops an ``(runs, k, k)`` one.  The prediction is
        cross-checked online by the measured bytes EWMA in
        :class:`~repro.runtime.pool.ChunkCostModel`.
        """
        item = np.dtype(COMPLEX_DTYPE).itemsize
        state = batch * self.dim * item
        total = 2 * state
        if mode == "adjoint":
            total += 4 * state
        for groups in self._dyn_groups.values():
            for g in groups:
                spec = self._specs[g]
                k = 2 ** len(spec.wires)
                per_sample = any(
                    ref is not None and ref.kind == "input"
                    for ref in spec.refs
                )
                eff = batch if per_sample else (runs or 1)
                total += eff * k * k * item
        if mode == "adjoint":
            for name, groups in self._train_groups.items():
                n_params = GATE_SET[name].n_params
                for g in groups:
                    k = 2 ** len(self._specs[g].wires)
                    total += n_params * (runs or 1) * k * k * item
        return total

    # -- kernels -----------------------------------------------------------

    def _apply_1q(self, mat, wire, src, dst, batch, runs=None) -> None:
        left, right = self._lr[wire]
        if mat.ndim == 2:
            s = src.reshape(batch, left, 2, right)
            d = dst.reshape(batch, left, 2, right)
            self._xp.einsum("ij,bljr->blir", mat, s, out=d)
        elif mat.ndim == 4:
            # Run-stacked (R, 1, 2, 2)-tagged matrices over a run-major
            # (R*B, dim) buffer: one matrix per run, shared by that
            # run's samples.  The buffer factors as (R, B*left, 2,
            # right) for free.  Always einsum here — these matrices
            # replace *shared* (2, 2) matrices of a per-run execution,
            # whose kernel is einsum on every wire, and einsum matches
            # it bitwise where the broadcast-matmul trailing-axis kernel
            # does not (complex gemm rounds differently).  Bit-identical
            # vectorized_runs searches depend on this.
            s = src.reshape(runs, -1, 2, right)
            d = dst.reshape(runs, -1, 2, right)
            self._xp.einsum("rij,rmjs->rmis", mat[:, 0], s, out=d)
        elif right == 1:
            # Batched matrices contracting the trailing axis: einsum's
            # slow path; broadcast matmul is ~2x faster (see the kernel
            # note at the top of this module).
            self._xp.matmul(
                mat[:, None],
                src.reshape(batch, left, 2, 1),
                out=dst.reshape(batch, left, 2, 1),
            )
        else:
            s = src.reshape(batch, left, 2, right)
            d = dst.reshape(batch, left, 2, right)
            self._xp.einsum("bij,bljr->blir", mat, s, out=d)

    def _apply_1q_inv(self, mat, wire, src, dst, batch, runs=None) -> None:
        if mat.ndim == 2:
            left, right = self._lr[wire]
            s = src.reshape(batch, left, 2, right)
            d = dst.reshape(batch, left, 2, right)
            self._xp.einsum("ji,bljr->blir", mat.conj(), s, out=d)
        else:
            # Daggered batched matrices reuse the forward kernel (and its
            # trailing-axis matmul and run-stacked specializations).
            self._apply_1q(
                self._xp.conj_transpose(mat), wire, src, dst, batch, runs
            )

    def _apply_2q(self, mat, wire_a, wire_b, src, dst, batch) -> None:
        # The general two-qubit gate keeps the reference NumPy kernel;
        # device backends round-trip through host here (non-diagonal,
        # non-permutation two-qubit gates are rare in the paper's
        # circuits, so the transfer is off the hot path).
        if self._xp.is_numpy:
            tensor = src.reshape((batch,) + (2,) * self.n_qubits)
            out = apply_two_qubit(tensor, mat, wire_a, wire_b)
            dst[:] = out.reshape(batch, self.dim)
            return
        host = self._xp.to_numpy(src).reshape((batch,) + (2,) * self.n_qubits)
        hmat = np.asarray(self._xp.to_numpy(mat))
        out = apply_two_qubit(host, hmat, wire_a, wire_b)
        dst[...] = self._xp.asarray(
            np.ascontiguousarray(out.reshape(batch, self.dim)),
            dtype=self._xp.complex_dtype,
        )

    def _combined(self, members, mats, runs=None) -> np.ndarray:
        mat = self._mat_of(members[0], mats)
        for m in members[1:]:
            mat = self._matmul_promote(self._mat_of(m, mats), mat, runs)
        return mat

    @staticmethod
    def _matmul_promote(a, b, runs=None) -> np.ndarray:
        """``a @ b`` for any mix of shared, per-run and per-sample stacks.

        Shared ``(k, k)`` matrices broadcast against anything via plain
        ``matmul`` (a per-run ``(R, 1, k, k)`` tag survives it).  Mixing
        a per-run stack with a per-sample ``(R*B, k, k)`` stack views
        the per-sample one as ``(R, B, k, k)`` so the run axis
        broadcasts, then flattens back — the product is per-sample.

        Uses the ``@`` operator so the same code works for ndarrays
        (where it *is* ``np.matmul``, bit-identically) and device
        tensors.
        """
        if a.ndim == 4 and b.ndim == 3:
            wide = b.reshape(runs, -1, *b.shape[1:])
            return (a @ wide).reshape(b.shape)
        if a.ndim == 3 and b.ndim == 4:
            wide = a.reshape(runs, -1, *a.shape[1:])
            return (wide @ b).reshape(a.shape)
        return a @ b

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        inputs: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        batch: int | None = None,
        shifts: Mapping[tuple[int, int], float] | None = None,
        record: bool = False,
        runs: int | None = None,
    ) -> np.ndarray:
        """Run the compiled program; return the final flat ``(B, 2**n)`` state.

        ``inputs`` rebinds every ``input``-ref parameter from column
        ``ref.index`` of a ``(B, n_features)`` array; ``weights`` rebinds
        every ``weight``-ref parameter from a flat vector.  Parameters
        without a binding keep the values baked in at compile time.
        ``shifts`` adds a delta to individual ``(op_index, param_index)``
        slots (the parameter-shift rule's hook); in run-stacked mode a
        delta may be a per-run ``(runs,)`` vector — one shift per run —
        which is how all ``2P`` shifted circuits of the parameter-shift
        rule execute as a single fused sweep.  The returned array is an
        engine-owned buffer, valid only until the next ``execute``.

        ``runs=R`` enables run-stacked execution: ``weights`` may then be
        a 2-D ``(R, n_weights)`` stack, one parameter set per run, and
        the batch must be ``R * B`` with run-major rows (run ``r`` owns
        rows ``r*B .. (r+1)*B``).  One sweep executes all ``R`` runs;
        see the module docstring.
        """
        if inputs is not None:
            # Parameter binding and gate-matrix construction are always
            # host-side (tiny arrays, branchy code); download any device
            # inputs/weights first.  Identity on the NumPy backend.
            inputs = np.asarray(self._xp.to_numpy(inputs), dtype=np.float64)
            if inputs.ndim != 2:
                raise ShapeError(
                    f"inputs must be (batch, n_features), got {inputs.shape}"
                )
            if inputs.shape[1] <= self._max_input:
                raise ShapeError(
                    f"tape references input {self._max_input}, inputs only "
                    f"have {inputs.shape[1]} features"
                )
        if weights is not None:
            weights = np.asarray(self._xp.to_numpy(weights), dtype=np.float64)
            if weights.ndim == 2 and runs is not None:
                if weights.shape[0] != runs:
                    raise ShapeError(
                        f"stacked weights have {weights.shape[0]} rows, "
                        f"expected runs={runs}"
                    )
                if weights.shape[1] <= self._max_weight:
                    raise ShapeError(
                        f"tape references weight {self._max_weight}, got "
                        f"{weights.shape[1]} weights per run"
                    )
            else:
                weights = np.ravel(weights)
                if weights.size <= self._max_weight:
                    raise ShapeError(
                        f"tape references weight {self._max_weight}, got "
                        f"{weights.size} weights"
                    )
        batch = self._resolve_batch(inputs, batch)
        if batch < 1:
            raise ShapeError(f"batch size must be positive, got {batch}")
        if runs is not None:
            if runs < 1:
                raise ShapeError(f"runs must be >= 1, got {runs}")
            if batch % runs != 0:
                raise ShapeError(
                    f"batch {batch} is not a multiple of runs {runs}"
                )
        if self._fixed_batch > 1 and batch != self._fixed_batch:
            raise ShapeError(
                f"tape has baked-in batched parameters of size "
                f"{self._fixed_batch}, cannot execute with batch {batch}"
            )
        values, run_ops = self._resolve_values(
            inputs, weights, batch, shifts, runs
        )
        mats = self._upload_mats(
            self._grouped_matrices(
                self._dyn_groups, values, batch, run_ops=run_ops
            )
        )

        buf, scratch = self._buffers(batch, "fwd", 2)
        self._xp.fill(buf, 0.0)
        buf[:, 0] = 1.0
        for instr in self._program:
            kind = instr[0]
            if kind == _F1Q:
                self._apply_1q(
                    self._dev(instr[2]), instr[1], buf, scratch, batch
                )
                buf, scratch = scratch, buf
            elif kind == _F1Q_DYN:
                mat = self._combined(instr[2], mats, runs)
                self._apply_1q(mat, instr[1], buf, scratch, batch, runs)
                buf, scratch = scratch, buf
            elif kind == _FPERM:
                self._xp.take(buf, self._dev_idx(instr[1]), scratch)
                buf, scratch = scratch, buf
            elif kind == _FNEG:
                buf[:, self._dev_idx(instr[1])] *= -1.0
            elif kind == _F2Q:
                self._apply_2q(instr[3], instr[1], instr[2], buf, scratch, batch)
                buf, scratch = scratch, buf
            else:  # _F2Q_DYN
                mat = self._mat_of(instr[3], mats)
                self._apply_2q(mat, instr[1], instr[2], buf, scratch, batch)
                buf, scratch = scratch, buf
        if record:
            # The record takes exclusive ownership of this buffer pair:
            # detaching it from the pool means later (e.g. inference)
            # executes allocate fresh buffers instead of clobbering the
            # recorded final state before backward consumes it.  The pair
            # returns to the pool on release.
            self._pools[batch].pop("fwd", None)
            self._last = {
                "batch": batch,
                "runs": runs,
                "run_ops": run_ops,
                "mats": mats,
                "values": values,
                "final": buf,
                "scratch": scratch,
            }
        else:
            # Keep the fwd pool aligned with the post-swap buffer roles.
            self._pools[batch]["fwd"] = [buf, scratch]
        return buf

    def run(
        self,
        inputs: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        batch: int | None = None,
    ) -> np.ndarray:
        """Like :meth:`execute` but returns an owned ``(B, 2, ..., 2)`` copy

        (the same layout as :func:`repro.quantum.circuit.run`).  Always
        a host ndarray, whatever the backend.
        """
        state = self._xp.to_numpy(
            self.execute(inputs=inputs, weights=weights, batch=batch)
        )
        b = state.shape[0]
        return state.reshape((b,) + (2,) * self.n_qubits).copy()

    def expvals(
        self,
        state: np.ndarray | None = None,
        wires: Sequence[int] | None = None,
        runs: int | None = None,
    ) -> np.ndarray:
        """Per-wire Z expectations of a flat state (default: last final).

        With ``runs=R`` the sign-table contraction runs once per run's
        row block: BLAS chooses its blocking by row count, so a single
        ``(R*B, dim)`` gemm is *not* bitwise identical to the per-run
        ``(B, dim)`` gemms — and run-stacked training must reproduce the
        per-run results exactly.
        """
        if state is None:
            if self._last is None:
                raise ShapeError("no state given and no recorded execution")
            state = self._last["final"]
        signs = self._z_signs
        n_signs = signs.shape[0]
        if wires is not None:
            wires = list(wires)
            for w in wires:
                if not 0 <= w < self.n_qubits:
                    raise ShapeError(
                        f"wire {w} out of range for {self.n_qubits} qubits"
                    )
            signs = signs[wires]
            n_signs = len(wires)
        if not self._xp.is_numpy:
            state = self._xp.asarray(state, dtype=self._xp.complex_dtype)
            signs = (
                self._dev(signs) if wires is None
                else self._xp.asarray(signs)
            )
        probs = self._xp.abs2(state)
        if runs is None or runs == 1:
            return probs @ signs.T
        if probs.shape[0] % runs != 0:
            raise ShapeError(
                f"batch {probs.shape[0]} is not a multiple of runs {runs}"
            )
        out = self._xp.empty(
            (probs.shape[0], n_signs), dtype=self._xp.real_dtype
        )
        per = probs.shape[0] // runs
        for r in range(runs):
            sl = slice(r * per, (r + 1) * per)
            self._xp.matmul(probs[sl], signs.T, out=out[sl])
        return out

    # -- compiled adjoint --------------------------------------------------

    def release(self) -> None:
        """Drop the recorded forward execution.

        The record's buffer pair goes back to the pool (replacing any
        pair allocated in the meantime), so nothing beyond the bounded
        pools stays pinned between training steps.
        """
        if self._last is not None:
            pool = self._pools.get(self._last["batch"])
            if pool is not None:
                pool["fwd"] = [self._last["final"], self._last["scratch"]]
            self._last = None

    def _deriv_overlaps(self, dmats, wire, ket, bra, batch, runs=None) -> np.ndarray:
        """``2 Re <bra_b| dU_p |ket_b>`` for all P parameters at once.

        ``dmats`` is the stacked ``(P, 2, 2)``, ``(P, B, 2, 2)`` or —
        run-stacked — ``(P, R, 2, 2)`` derivative-matrix array of one
        gate; returns ``(P, B)`` per-sample overlaps — the adjoint
        method's gradient contraction, vectorised across the gate's
        parameters instead of looping.
        """
        left, right = self._lr[wire]
        if dmats.ndim == 5:
            # Per-run (P, R, 1, 2, 2)-tagged derivative matrices over a
            # run-major buffer: view the states as (R, B, left, 2,
            # right) so the run axis lines up, then flatten the
            # per-sample overlaps back to (P, R*B).
            per = batch // runs
            k = ket.reshape(runs, per, left, 2, right)
            b = bra.reshape(runs, per, left, 2, right)
            dk = self._xp.einsum("prij,rbljs->prblis", dmats[:, :, 0], k)
            out = 2.0 * (
                self._xp.einsum("rblis,prblis->prb", b.real, dk.real)
                + self._xp.einsum("rblis,prblis->prb", b.imag, dk.imag)
            )
            return out.reshape(dmats.shape[0], batch)
        k = ket.reshape(batch, left, 2, right)
        b = bra.reshape(batch, left, 2, right)
        if dmats.ndim == 3:
            dk = self._xp.einsum("pij,bljr->pblir", dmats, k)
        else:
            dk = self._xp.einsum("pbij,bljr->pblir", dmats, k)
        return 2.0 * (
            self._xp.einsum("blir,pblir->pb", b.real, dk.real)
            + self._xp.einsum("blir,pblir->pb", b.imag, dk.imag)
        )

    def _apply_adj_step(self, step, mats, src, dst, batch, runs=None):
        """Apply the inverse of one original op; return the live buffer pair."""
        kind = step[0]
        if kind == "m1":
            self._apply_1q_inv(mats, step[1], src, dst, batch, runs)
            return dst, src
        if kind == "perm":
            self._xp.take(src, self._dev_idx(step[2]), dst)
            return dst, src
        if kind == "neg":
            src[:, self._dev_idx(step[1])] *= -1.0
            return src, dst
        # kind == "m2" — two-qubit matrices stay host-side (see
        # _apply_2q), so the dagger is plain NumPy.
        inv = np.conj(np.swapaxes(mats, -1, -2))
        self._apply_2q(inv, step[1], step[2], src, dst, batch)
        return dst, src

    def adjoint_gradients(
        self,
        grad_out: np.ndarray,
        n_inputs: int,
        n_weights: int,
        measure_wires: Sequence[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled version of :func:`repro.quantum.adjoint.adjoint_gradients`.

        Consumes the execution recorded by ``execute(record=True)`` —
        reusing its bound gate matrices — and releases it afterwards.
        Returns per-sample ``input`` gradients ``(B, n_inputs)`` and
        batch-summed ``weight`` gradients ``(n_weights,)``.  For a
        run-stacked record (``execute(..., runs=R)`` with 2-D weights)
        the weight gradients come back **per run**, shape
        ``(R, n_weights)``, each row summed over that run's samples only.
        """
        if self._last is None:
            raise ShapeError(
                "adjoint_gradients needs a recorded forward; call "
                "execute(record=True) first"
            )
        for g, reason in self._adjoint_unsupported.items():
            if self._specs[g].dynamic:
                raise GateError(reason)
        last = self._last
        batch, mats, values = last["batch"], last["mats"], last["values"]
        runs = last["runs"]
        ket, kscr = last["final"], last["scratch"]
        bra, bscr = self._buffers(batch, "adj", 2)

        grad_out = self._xp.as_real(grad_out)
        signs = self._z_signs
        if measure_wires is not None:
            signs = signs[list(measure_wires)]
        if tuple(grad_out.shape) != (batch, signs.shape[0]):
            raise ShapeError(
                f"grad_out must be ({batch}, {signs.shape[0]}), "
                f"got {tuple(grad_out.shape)}"
            )
        n_z = signs.shape[1]
        if not self._xp.is_numpy:
            signs = (
                self._dev(signs) if measure_wires is None
                else self._xp.asarray(signs)
            )
        # Seed |bra_b> = (sum_k g_bk Z_k)|psi_b>: the Z combination is a
        # diagonal, so it is one matmul against the sign table followed by
        # an elementwise product with the final state.  Run-stacked
        # records seed per run block so the gemm's row count — and with
        # it BLAS's rounding — matches a per-run execution exactly.
        if runs is None or runs == 1:
            seed = grad_out @ signs
        else:
            seed = self._xp.empty((batch, n_z), dtype=self._xp.real_dtype)
            per = batch // runs
            for r in range(runs):
                sl = slice(r * per, (r + 1) * per)
                self._xp.matmul(grad_out[sl], signs, out=seed[sl])
        self._xp.multiply(seed, ket, bra)

        derivs = self._grouped_matrices(
            self._train_groups,
            values,
            batch,
            deriv=True,
            run_ops=last["run_ops"],
        )
        if not self._xp.is_numpy:
            # Derivative stacks are single-qubit only (2x2 trailing
            # axes); upload them once for the whole reversed sweep.
            derivs = {g: self._xp.asarray(d) for g, d in derivs.items()}
        input_grads = self._xp.zeros(
            (batch, n_inputs), dtype=self._xp.real_dtype
        )
        if runs is not None:
            weight_grads = self._xp.zeros(
                (runs, n_weights), dtype=self._xp.real_dtype
            )
        else:
            weight_grads = self._xp.zeros(
                n_weights, dtype=self._xp.real_dtype
            )

        for g in range(len(self._specs) - 1, -1, -1):
            spec = self._specs[g]
            step = self._adj_program[g]
            if step[0] == "skip":
                # Folded into a fused permutation applied at the end of
                # this run of permutation gates (none carry parameters).
                continue
            gate_mat = (
                self._mat_of(g, mats)
                if step[0] in ("m1", "m2")
                else None
            )
            ket, kscr = self._apply_adj_step(
                step, gate_mat, ket, kscr, batch, runs
            )
            d_entry = derivs.get(g)
            if d_entry is not None:
                refs = spec.refs
                if any(r is None for r in refs):
                    keep = [p for p, r in enumerate(refs) if r is not None]
                    d_entry = d_entry[keep]
                    refs = [refs[p] for p in keep]
                overlaps = self._deriv_overlaps(
                    d_entry, spec.wires[0], ket, bra, batch, runs
                )
                for per_sample, ref in zip(overlaps, refs):
                    if ref.kind == "input":
                        input_grads[:, ref.index] += per_sample
                    elif runs is not None:
                        # Per-run weight gradients: each run's row sums
                        # its own B contiguous samples (same pairwise
                        # reduction a per-run execution would perform).
                        weight_grads[:, ref.index] += per_sample.reshape(
                            runs, -1
                        ).sum(axis=1)
                    else:
                        weight_grads[ref.index] += per_sample.sum()
            bra, bscr = self._apply_adj_step(
                step, gate_mat, bra, bscr, batch, runs
            )

        pool = self._pools.get(batch)
        if pool is not None:
            pool["adj"] = [bra, bscr]
            # Return the record's buffer pair to the pool for reuse.
            pool["fwd"] = [ket, kscr]
        self._last = None
        return input_grads, weight_grads


# -- process-wide compile cache -------------------------------------------
#
# The grid search trains the same handful of circuit *structures* hundreds
# of times (every run of every candidate rebuilds its model from scratch).
# Compilation is cheap but not free, and in the parallel runtime each
# worker process would otherwise recompile identical tapes for every job
# it executes.  The cache below is keyed purely by structure — gate names,
# wires, parameter provenance (``ParamRef``) and the *values* of
# unreferenced (constant) parameters.  Referenced parameters are excluded
# from the key on purpose: a cached compilation may carry a previous
# tape's default values in those slots, so cache users must rebind every
# referenced parameter on each ``execute`` (exactly what
# :class:`repro.hybrid.QuantumLayer` does).  Every hit returns a
# :meth:`CompiledTape.clone` — the compiled program is shared, execution
# state (buffer pools, recorded forwards) is per-instance — so two live
# layers with identical structure can never clobber each other.  The
# cache is opt-in: sequential library use keeps the engine-per-layer
# behaviour unless :func:`enable_compile_cache` is called (the parallel
# runtime enables it in each worker's initializer).

_COMPILE_CACHE: dict[tuple, CompiledTape] | None = None
_COMPILE_CACHE_MAX = 32
_CACHE_HITS = 0
_CACHE_MISSES = 0
_CACHE_EVICTIONS = 0


def _structure_key(ops: Sequence[Operation], n_qubits: int) -> tuple:
    """Hashable structural signature of a tape (see cache contract above)."""
    parts: list[tuple] = [(n_qubits,)]
    for op in ops:
        entry: list[object] = [op.name, op.wires]
        for param, ref in zip(op.params, op.refs):
            if ref is not None:
                entry.append((ref.kind, ref.index))
            else:
                arr = np.asarray(param)
                entry.append((arr.shape, arr.tobytes()))
        parts.append(tuple(entry))
    return tuple(parts)


def enable_compile_cache(maxsize: int = 32) -> None:
    """Turn on the process-wide compiled-tape cache (idempotent).

    Cache hits share the compiled *program* only (see
    :meth:`CompiledTape.clone`); each caller gets independent execution
    state, so structurally identical live layers cannot interfere.

    ``maxsize`` is a hard LRU cap.  Persistent pool workers live for a
    whole protocol run (many search spaces, many circuit structures), so
    an unbounded cache would grow without limit; the least recently used
    compilation is evicted instead, and :func:`compile_cache_info`
    reports the cap and an eviction counter for observability.
    """
    global _COMPILE_CACHE, _COMPILE_CACHE_MAX
    global _CACHE_HITS, _CACHE_MISSES, _CACHE_EVICTIONS
    if maxsize < 1:
        raise ConfigurationError(f"cache size must be >= 1, got {maxsize}")
    if _COMPILE_CACHE is None:
        _COMPILE_CACHE = {}
        _CACHE_HITS = _CACHE_MISSES = _CACHE_EVICTIONS = 0
    _COMPILE_CACHE_MAX = maxsize
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        del _COMPILE_CACHE[next(iter(_COMPILE_CACHE))]
        _CACHE_EVICTIONS += 1


def disable_compile_cache() -> None:
    """Drop the cache and return to compile-per-call behaviour."""
    global _COMPILE_CACHE
    _COMPILE_CACHE = None


def compile_cache_info() -> dict[str, int | bool]:
    """Cache observability: enabled flag, size, LRU cap, counters.

    ``evictions`` counts entries dropped by the LRU cap — a persistent
    worker whose evictions keep climbing is churning through more
    circuit structures than the cap holds (raise ``maxsize`` via
    :func:`enable_compile_cache`)."""
    return {
        "enabled": _COMPILE_CACHE is not None,
        "size": len(_COMPILE_CACHE) if _COMPILE_CACHE is not None else 0,
        "maxsize": _COMPILE_CACHE_MAX,
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
        "evictions": _CACHE_EVICTIONS,
    }


def compiled_tape(
    ops: Sequence[Operation],
    n_qubits: int,
    backend: "ArrayBackend | None" = None,
) -> CompiledTape:
    """Compile a tape, consulting the process-wide cache when enabled.

    With the cache disabled this is exactly ``CompiledTape(ops, n_qubits,
    backend=backend)``.  With it enabled, structurally identical tapes
    share one compilation and each call receives its own
    :meth:`~CompiledTape.clone`; see the cache contract above for what
    callers must rebind.  The cache key includes the backend name, so a
    torch-backed layer never receives a numpy-backed engine (or vice
    versa); ``backend=None`` means the NumPy backend — device execution
    is an explicit opt-in per compilation.
    """
    global _CACHE_HITS, _CACHE_MISSES, _CACHE_EVICTIONS
    xp = backend if backend is not None else get_backend("numpy")
    if _COMPILE_CACHE is None:
        return CompiledTape(ops, n_qubits, backend=xp)
    key = (xp.name,) + _structure_key(ops, n_qubits)
    engine = _COMPILE_CACHE.get(key)
    if engine is not None:
        _CACHE_HITS += 1
        # Move to the end: first key is the least recently used entry.
        _COMPILE_CACHE[key] = _COMPILE_CACHE.pop(key)
        return engine.clone()
    _CACHE_MISSES += 1
    engine = CompiledTape(ops, n_qubits, backend=xp)
    _COMPILE_CACHE[key] = engine
    while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
        del _COMPILE_CACHE[next(iter(_COMPILE_CACHE))]
        _CACHE_EVICTIONS += 1
    return engine.clone()
