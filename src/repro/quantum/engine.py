"""Compiled circuit execution engine: compile once, execute many times.

The reference executor (:func:`repro.quantum.circuit.run`) walks a tape of
:class:`~repro.quantum.circuit.Operation` objects, rebuilding each gate's
matrix and paying a ``moveaxis`` round-trip (two full-state copies) per
gate application.  That is the right *reference* semantics but the wrong
cost model for training: the paper's protocol executes the same circuit
structure thousands of times per grid-search cell with only the parameter
values changing.

:class:`CompiledTape` separates the two phases:

**Compile (once per circuit structure).**  The tape is analysed into a
flat instruction program:

* fixed-gate matrices are built once and cached;
* runs of single-qubit gates acting on the same wire (with no intervening
  multi-qubit gate touching that wire) are fused into one 2x2 — or
  batched ``(B, 2, 2)`` — matrix, so e.g. an encoding rotation and the
  first ansatz rotation on each wire cost a single kernel application;
* CNOT / SWAP become precomputed full-register index permutations and CZ
  becomes an in-place sign flip of a precomputed index set — no
  floating-point matrix arithmetic and no ``state.copy()``;
* per-wire reshape factors are precomputed so single-qubit kernels act on
  a flat ``(B, 2**n)`` buffer through free ``(B, left, 2, right)``
  reshape views instead of ``moveaxis`` copies.

**Execute (per batch / parameter binding).**  ``execute`` binds parameter
values into the compiled slots — data features through ``input``
:class:`~repro.quantum.circuit.ParamRef` slots, trainable angles through
``weight`` slots — computes all dynamic gate matrices in one vectorised
call per gate type, and then streams the instruction program over a pair
of preallocated ping-pong buffers.  No per-gate allocation happens on the
hot path.  The compiled adjoint sweep (``adjoint_gradients``) reuses the
recorded forward matrices and three more pooled buffers (bra, bra
scratch, derivative scratch) across the whole reversed tape.

The engine is differentially tested against the reference executor and
:func:`repro.quantum.adjoint.adjoint_gradients` to 1e-12
(``tests/quantum/test_engine.py``); the reference implementations remain
the semantics oracle.

Contract notes:

* Buffers are owned by the engine and reused: the array returned by a
  plain ``execute`` is only valid until the next ``execute`` call.  Copy
  it (or use :meth:`CompiledTape.run`) if you need it to survive.
* ``execute(record=True)`` keeps the bound matrices and final state for
  a subsequent ``adjoint_gradients`` call; the recorded state owns its
  buffers, so it survives intervening (e.g. evaluation) executes.  The
  adjoint call releases the record when done — and buffer pools are
  bounded to a few batch sizes — so long training runs do not pin the
  largest batch in memory.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..exceptions import GateError, ShapeError
from .circuit import GATE_SET, Operation
from .state import abs2, apply_two_qubit, double_real_overlap

__all__ = ["CompiledTape"]

#: Buffer pools are kept for at most this many distinct batch sizes; the
#: least recently used pool is evicted beyond that.  Bounds the memory a
#: long-lived engine pins when it alternates minibatch training with
#: full-dataset evaluation batches.
_MAX_POOLS = 4

# Instruction opcodes for the forward program.
_F1Q = 0        # fused single-qubit gate, matrix precomputed at compile
_F1Q_DYN = 1    # fused single-qubit gate, matrix combined per execution
_FPERM = 2      # full-register index permutation (CNOT, SWAP)
_FNEG = 3       # in-place sign flip of an index subset (CZ)
_F2Q = 4        # general two-qubit matrix, precomputed
_F2Q_DYN = 5    # general two-qubit matrix, bound per execution


class _OpSpec:
    """Per-operation compile-time record."""

    __slots__ = ("name", "wires", "info", "defaults", "refs", "dynamic")

    def __init__(self, op: Operation) -> None:
        self.name = op.name
        self.wires = op.wires
        self.info = op.info
        self.defaults = op.params
        self.refs = op.refs
        self.dynamic = any(r is not None for r in op.refs)


class CompiledTape:
    """A circuit compiled from its structure for repeated execution.

    Parameters
    ----------
    ops:
        The tape to compile.  Gate names, wires and ``ParamRef``s define
        the *structure*; the operations' parameter values become the
        defaults used when no binding is supplied (so
        ``CompiledTape(ops, n).run()`` reproduces ``circuit.run(ops, n)``
        exactly).
    n_qubits:
        Register width.
    """

    def __init__(self, ops: Sequence[Operation], n_qubits: int) -> None:
        if n_qubits < 1:
            raise ShapeError(f"need at least one qubit, got {n_qubits}")
        self.n_qubits = n_qubits
        self.dim = 2**n_qubits
        self._specs = [_OpSpec(op) for op in ops]
        self._validate_wires()

        # Wire w of the flat (B, 2**n) buffer factors as
        # (B, left, 2, right) with left = 2**w (wire 0 is the MSB).
        self._lr = [
            (2**w, 2 ** (n_qubits - 1 - w)) for w in range(n_qubits)
        ]

        # Z-expectation sign table: signs[w, k] = +1 if bit w of basis
        # index k is 0 else -1.  Turns expval/adjoint seeding into one
        # matmul against probabilities/amplitudes.
        ks = np.arange(self.dim)
        bits = (ks[None, :] >> (n_qubits - 1 - np.arange(n_qubits)[:, None])) & 1
        self._z_signs = (1.0 - 2.0 * bits).astype(np.float64)

        self._static_mats: dict[int, np.ndarray] = {}
        self._dynamic: list[int] = []
        self._dyn_groups: dict[str, list[int]] = {}
        self._train_groups: dict[str, list[int]] = {}
        self._adjoint_unsupported: dict[int, str] = {}
        self._max_input = -1
        self._max_weight = -1
        # _default_batch: batch inferred when execute() gets no binding
        # (any batched default).  _fixed_batch: hard constraint coming
        # from batched parameters of *static* ops, whose matrices are
        # precomputed at compile time and cannot be rebound.
        self._default_batch = 1
        self._fixed_batch = 1
        self._classify()

        self._program: list[tuple] = []
        self._adj_program: list[tuple] = []
        self._compile_program()

        self._pools: dict[int, dict[str, list[np.ndarray]]] = {}
        self._last: dict | None = None

    # -- compilation -------------------------------------------------------

    def _validate_wires(self) -> None:
        for spec in self._specs:
            for w in spec.wires:
                if not 0 <= w < self.n_qubits:
                    raise ShapeError(
                        f"{spec.name} wire {w} out of range for "
                        f"{self.n_qubits} qubits"
                    )

    def _classify(self) -> None:
        for g, spec in enumerate(self._specs):
            for ref, dflt in zip(spec.refs, spec.defaults):
                if ref is not None:
                    if ref.kind == "input":
                        self._max_input = max(self._max_input, ref.index)
                    else:
                        self._max_weight = max(self._max_weight, ref.index)
                if dflt.ndim == 1 and dflt.shape[0] > 1:
                    if self._default_batch not in (1, dflt.shape[0]):
                        raise ShapeError(
                            f"inconsistent batched default parameters: "
                            f"{self._default_batch} vs {dflt.shape[0]}"
                        )
                    self._default_batch = dflt.shape[0]
                    if not spec.dynamic:
                        self._fixed_batch = dflt.shape[0]
            if spec.dynamic:
                self._dynamic.append(g)
                if spec.info.matrix_fn is not None:
                    self._dyn_groups.setdefault(spec.name, []).append(g)
                if len(spec.wires) != 1:
                    self._adjoint_unsupported[g] = (
                        f"adjoint differentiation supports single-qubit "
                        f"parametrized gates, got {spec.name} on {spec.wires}"
                    )
                elif spec.info.deriv_fn is None:
                    self._adjoint_unsupported[g] = (
                        f"{spec.name} has no derivative rule"
                    )
                else:
                    self._train_groups.setdefault(spec.name, []).append(g)
            elif spec.info.matrix_fn is not None and (
                spec.info.basis_perm is None and spec.info.basis_diag is None
            ):
                self._static_mats[g] = spec.info.matrix_fn(*spec.defaults)

    def _full_perm(self, basis_perm, wire_a: int, wire_b: int) -> np.ndarray:
        """Register-wide permutation: ``new[k] = old[perm[k]]``."""
        n = self.n_qubits
        sa, sb = n - 1 - wire_a, n - 1 - wire_b
        ks = np.arange(self.dim)
        j = (((ks >> sa) & 1) << 1) | ((ks >> sb) & 1)
        pj = np.asarray(basis_perm)[j]
        cleared = ks & ~((1 << sa) | (1 << sb))
        return cleared | ((pj >> 1) << sa) | ((pj & 1) << sb)

    def _negate_indices(self, basis_diag, wire_a: int, wire_b: int) -> np.ndarray:
        """Indices whose sign flips under a ``+-1`` diagonal gate."""
        n = self.n_qubits
        sa, sb = n - 1 - wire_a, n - 1 - wire_b
        ks = np.arange(self.dim)
        j = (((ks >> sa) & 1) << 1) | ((ks >> sb) & 1)
        return ks[np.asarray(basis_diag)[j] < 0]

    def _flush(self, pending: dict[int, list[int]], wire: int) -> None:
        members = pending.pop(wire, None)
        if not members:
            return
        if all(m in self._static_mats for m in members):
            mat = self._static_mats[members[0]]
            for m in members[1:]:
                mat = np.matmul(self._static_mats[m], mat)
            self._program.append((_F1Q, wire, mat))
        else:
            self._program.append((_F1Q_DYN, wire, tuple(members)))

    def _compile_program(self) -> None:
        pending: dict[int, list[int]] = {}
        for g, spec in enumerate(self._specs):
            info = spec.info
            if len(spec.wires) == 1 and info.matrix_fn is not None:
                pending.setdefault(spec.wires[0], []).append(g)
                self._adj_program.append(("m1", spec.wires[0]))
                continue
            for w in spec.wires:
                self._flush(pending, w)
            wa, wb = spec.wires
            if info.basis_perm is not None:
                perm = self._full_perm(info.basis_perm, wa, wb)
                inv = np.argsort(perm)
                self._program.append((_FPERM, perm))
                self._adj_program.append(("perm", perm, inv))
            elif info.basis_diag is not None:
                idx = self._negate_indices(info.basis_diag, wa, wb)
                self._program.append((_FNEG, idx))
                self._adj_program.append(("neg", idx))
            elif g in self._static_mats:
                self._program.append((_F2Q, wa, wb, self._static_mats[g]))
                self._adj_program.append(("m2", wa, wb))
            else:
                self._program.append((_F2Q_DYN, wa, wb, g))
                self._adj_program.append(("m2", wa, wb))
        for w in sorted(pending):
            self._flush(pending, w)

    # -- introspection -----------------------------------------------------

    @property
    def n_ops(self) -> int:
        """Number of operations in the source tape."""
        return len(self._specs)

    @property
    def n_instructions(self) -> int:
        """Number of compiled forward instructions (after fusion)."""
        return len(self._program)

    @property
    def has_record(self) -> bool:
        """Whether a recorded forward execution is pending a backward."""
        return self._last is not None

    def referenced_params(self) -> list[tuple[int, int, object]]:
        """All ``(op_index, param_index, ref)`` triples with a live ref."""
        out = []
        for g, spec in enumerate(self._specs):
            for p, ref in enumerate(spec.refs):
                if ref is not None:
                    out.append((g, p, ref))
        return out

    # -- parameter binding -------------------------------------------------

    def _resolve_batch(self, inputs, batch) -> int:
        if inputs is not None:
            if batch is not None and batch != inputs.shape[0]:
                raise ShapeError(
                    f"batch {batch} != inputs batch {inputs.shape[0]}"
                )
            return inputs.shape[0]
        if batch is not None:
            return batch
        return self._default_batch

    def _resolve_values(
        self, inputs, weights, batch, shifts
    ) -> dict[int, list[np.ndarray]]:
        values: dict[int, list[np.ndarray]] = {}
        for g in self._dynamic:
            spec = self._specs[g]
            vals = []
            for p, ref in enumerate(spec.refs):
                if ref is not None and ref.kind == "input" and inputs is not None:
                    v = inputs[:, ref.index]
                elif (
                    ref is not None
                    and ref.kind == "weight"
                    and weights is not None
                ):
                    v = weights[ref.index]
                else:
                    v = spec.defaults[p]
                if v.ndim == 1 and v.shape[0] != batch:
                    raise ShapeError(
                        f"{spec.name} parameter batch {v.shape[0]} != "
                        f"execution batch {batch}"
                    )
                if shifts is not None:
                    delta = shifts.get((g, p))
                    if delta is not None:
                        v = v + delta
                vals.append(v)
            values[g] = vals
        return values

    def _grouped_matrices(
        self,
        groups: Mapping[str, list[int]],
        values: Mapping[int, list[np.ndarray]],
        batch: int,
        deriv: bool = False,
    ) -> dict[int, tuple[np.ndarray, ...]]:
        """Vectorised matrix construction: one builder call per gate type.

        Returns per-op tuples (one entry per parameter for ``deriv=True``,
        a 1-tuple holding the gate matrix otherwise).
        """
        out: dict[int, tuple[np.ndarray, ...]] = {}
        for name, group in groups.items():
            info = GATE_SET[name]
            fn = info.deriv_fn if deriv else info.matrix_fn
            n_p = info.n_params
            cols = [[values[g][p] for g in group] for p in range(n_p)]
            batched = any(v.ndim == 1 for col in cols for v in col)
            if batched:
                args = []
                for col in cols:
                    a = np.empty((len(group), batch))
                    for i, v in enumerate(col):
                        a[i] = v
                    args.append(a.reshape(-1))
            else:
                args = [np.array(col, dtype=np.float64) for col in cols]
            result = fn(*args)
            if not isinstance(result, tuple):
                result = (result,)
            per_op: list[np.ndarray] = []
            for mats in result:
                k = mats.shape[-1]
                if batched:
                    mats = mats.reshape(len(group), batch, k, k)
                per_op.append(mats)
            for i, g in enumerate(group):
                out[g] = tuple(mats[i] for mats in per_op)
        return out

    def _mat_of(self, g: int, mats: Mapping[int, tuple]) -> np.ndarray:
        entry = mats.get(g)
        if entry is not None:
            return entry[0]
        return self._static_mats[g]

    # -- buffers -----------------------------------------------------------

    def _buffers(self, batch: int, kind: str, count: int) -> list[np.ndarray]:
        pool = self._pools.get(batch)
        if pool is None:
            pool = self._pools[batch] = {}
        else:
            # Move to the end: dicts preserve insertion order, so the
            # first key is always the least recently used pool.
            self._pools[batch] = self._pools.pop(batch)
        while len(self._pools) > _MAX_POOLS:
            del self._pools[next(iter(self._pools))]
        bufs = pool.get(kind)
        if bufs is None:
            bufs = [
                np.empty((batch, self.dim), dtype=np.complex128)
                for _ in range(count)
            ]
            pool[kind] = bufs
        return bufs

    # -- kernels -----------------------------------------------------------

    def _apply_1q(self, mat, wire, src, dst, batch) -> None:
        left, right = self._lr[wire]
        s = src.reshape(batch, left, 2, right)
        d = dst.reshape(batch, left, 2, right)
        if mat.ndim == 2:
            np.einsum("ij,bljr->blir", mat, s, out=d)
        else:
            np.einsum("bij,bljr->blir", mat, s, out=d)

    def _apply_1q_inv(self, mat, wire, src, dst, batch) -> None:
        left, right = self._lr[wire]
        s = src.reshape(batch, left, 2, right)
        d = dst.reshape(batch, left, 2, right)
        if mat.ndim == 2:
            np.einsum("ji,bljr->blir", mat.conj(), s, out=d)
        else:
            np.einsum("bji,bljr->blir", mat.conj(), s, out=d)

    def _apply_2q(self, mat, wire_a, wire_b, src, dst, batch) -> None:
        tensor = src.reshape((batch,) + (2,) * self.n_qubits)
        out = apply_two_qubit(tensor, mat, wire_a, wire_b)
        dst[:] = out.reshape(batch, self.dim)

    def _combined(self, members, mats) -> np.ndarray:
        mat = self._mat_of(members[0], mats)
        for m in members[1:]:
            mat = np.matmul(self._mat_of(m, mats), mat)
        return mat

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        inputs: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        batch: int | None = None,
        shifts: Mapping[tuple[int, int], float] | None = None,
        record: bool = False,
    ) -> np.ndarray:
        """Run the compiled program; return the final flat ``(B, 2**n)`` state.

        ``inputs`` rebinds every ``input``-ref parameter from column
        ``ref.index`` of a ``(B, n_features)`` array; ``weights`` rebinds
        every ``weight``-ref parameter from a flat vector.  Parameters
        without a binding keep the values baked in at compile time.
        ``shifts`` adds a delta to individual ``(op_index, param_index)``
        slots (the parameter-shift rule's hook).  The returned array is an
        engine-owned buffer, valid only until the next ``execute``.
        """
        if inputs is not None:
            inputs = np.asarray(inputs, dtype=np.float64)
            if inputs.ndim != 2:
                raise ShapeError(
                    f"inputs must be (batch, n_features), got {inputs.shape}"
                )
            if inputs.shape[1] <= self._max_input:
                raise ShapeError(
                    f"tape references input {self._max_input}, inputs only "
                    f"have {inputs.shape[1]} features"
                )
        if weights is not None:
            weights = np.ravel(np.asarray(weights, dtype=np.float64))
            if weights.size <= self._max_weight:
                raise ShapeError(
                    f"tape references weight {self._max_weight}, got "
                    f"{weights.size} weights"
                )
        batch = self._resolve_batch(inputs, batch)
        if batch < 1:
            raise ShapeError(f"batch size must be positive, got {batch}")
        if self._fixed_batch > 1 and batch != self._fixed_batch:
            raise ShapeError(
                f"tape has baked-in batched parameters of size "
                f"{self._fixed_batch}, cannot execute with batch {batch}"
            )
        values = self._resolve_values(inputs, weights, batch, shifts)
        mats = self._grouped_matrices(self._dyn_groups, values, batch)

        buf, scratch = self._buffers(batch, "fwd", 2)
        buf.fill(0.0)
        buf[:, 0] = 1.0
        for instr in self._program:
            kind = instr[0]
            if kind == _F1Q:
                self._apply_1q(instr[2], instr[1], buf, scratch, batch)
                buf, scratch = scratch, buf
            elif kind == _F1Q_DYN:
                mat = self._combined(instr[2], mats)
                self._apply_1q(mat, instr[1], buf, scratch, batch)
                buf, scratch = scratch, buf
            elif kind == _FPERM:
                np.take(buf, instr[1], axis=1, out=scratch)
                buf, scratch = scratch, buf
            elif kind == _FNEG:
                buf[:, instr[1]] *= -1.0
            elif kind == _F2Q:
                self._apply_2q(instr[3], instr[1], instr[2], buf, scratch, batch)
                buf, scratch = scratch, buf
            else:  # _F2Q_DYN
                mat = self._mat_of(instr[3], mats)
                self._apply_2q(mat, instr[1], instr[2], buf, scratch, batch)
                buf, scratch = scratch, buf
        if record:
            # The record takes exclusive ownership of this buffer pair:
            # detaching it from the pool means later (e.g. inference)
            # executes allocate fresh buffers instead of clobbering the
            # recorded final state before backward consumes it.  The pair
            # returns to the pool on release.
            self._pools[batch].pop("fwd", None)
            self._last = {
                "batch": batch,
                "mats": mats,
                "values": values,
                "final": buf,
                "scratch": scratch,
            }
        else:
            # Keep the fwd pool aligned with the post-swap buffer roles.
            self._pools[batch]["fwd"] = [buf, scratch]
        return buf

    def run(
        self,
        inputs: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        batch: int | None = None,
    ) -> np.ndarray:
        """Like :meth:`execute` but returns an owned ``(B, 2, ..., 2)`` copy

        (the same layout as :func:`repro.quantum.circuit.run`).
        """
        state = self.execute(inputs=inputs, weights=weights, batch=batch)
        b = state.shape[0]
        return state.reshape((b,) + (2,) * self.n_qubits).copy()

    def expvals(
        self,
        state: np.ndarray | None = None,
        wires: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Per-wire Z expectations of a flat state (default: last final)."""
        if state is None:
            if self._last is None:
                raise ShapeError("no state given and no recorded execution")
            state = self._last["final"]
        signs = self._z_signs
        if wires is not None:
            wires = list(wires)
            for w in wires:
                if not 0 <= w < self.n_qubits:
                    raise ShapeError(
                        f"wire {w} out of range for {self.n_qubits} qubits"
                    )
            signs = signs[wires]
        return abs2(state) @ signs.T

    # -- compiled adjoint --------------------------------------------------

    def release(self) -> None:
        """Drop the recorded forward execution.

        The record's buffer pair goes back to the pool (replacing any
        pair allocated in the meantime), so nothing beyond the bounded
        pools stays pinned between training steps.
        """
        if self._last is not None:
            pool = self._pools.get(self._last["batch"])
            if pool is not None:
                pool["fwd"] = [self._last["final"], self._last["scratch"]]
            self._last = None

    def _apply_adj_step(self, step, mats, src, dst, batch):
        """Apply the inverse of one original op; return the live buffer pair."""
        kind = step[0]
        if kind == "m1":
            self._apply_1q_inv(mats, step[1], src, dst, batch)
            return dst, src
        if kind == "perm":
            np.take(src, step[2], axis=1, out=dst)
            return dst, src
        if kind == "neg":
            src[:, step[1]] *= -1.0
            return src, dst
        # kind == "m2"
        inv = np.conj(np.swapaxes(mats, -1, -2))
        self._apply_2q(inv, step[1], step[2], src, dst, batch)
        return dst, src

    def adjoint_gradients(
        self,
        grad_out: np.ndarray,
        n_inputs: int,
        n_weights: int,
        measure_wires: Sequence[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compiled version of :func:`repro.quantum.adjoint.adjoint_gradients`.

        Consumes the execution recorded by ``execute(record=True)`` —
        reusing its bound gate matrices — and releases it afterwards.
        Returns per-sample ``input`` gradients ``(B, n_inputs)`` and
        batch-summed ``weight`` gradients ``(n_weights,)``.
        """
        if self._last is None:
            raise ShapeError(
                "adjoint_gradients needs a recorded forward; call "
                "execute(record=True) first"
            )
        for g, reason in self._adjoint_unsupported.items():
            if self._specs[g].dynamic:
                raise GateError(reason)
        last = self._last
        batch, mats, values = last["batch"], last["mats"], last["values"]
        ket, kscr = last["final"], last["scratch"]
        bra, bscr, dket = self._buffers(batch, "adj", 3)

        grad_out = np.asarray(grad_out, dtype=np.float64)
        signs = self._z_signs
        if measure_wires is not None:
            signs = signs[list(measure_wires)]
        if grad_out.shape != (batch, signs.shape[0]):
            raise ShapeError(
                f"grad_out must be ({batch}, {signs.shape[0]}), "
                f"got {grad_out.shape}"
            )
        # Seed |bra_b> = (sum_k g_bk Z_k)|psi_b>: the Z combination is a
        # diagonal, so it is one matmul against the sign table followed by
        # an elementwise product with the final state.
        np.multiply(grad_out @ signs, ket, out=bra)

        derivs = self._grouped_matrices(
            self._train_groups, values, batch, deriv=True
        )
        input_grads = np.zeros((batch, n_inputs), dtype=np.float64)
        weight_grads = np.zeros(n_weights, dtype=np.float64)

        for g in range(len(self._specs) - 1, -1, -1):
            spec = self._specs[g]
            step = self._adj_program[g]
            gate_mat = (
                self._mat_of(g, mats)
                if step[0] in ("m1", "m2")
                else None
            )
            ket, kscr = self._apply_adj_step(step, gate_mat, ket, kscr, batch)
            d_entry = derivs.get(g)
            if d_entry is not None:
                wire = spec.wires[0]
                for d_mat, ref in zip(d_entry, spec.refs):
                    if ref is None:
                        continue
                    self._apply_1q(d_mat, wire, ket, dket, batch)
                    per_sample = double_real_overlap(bra, dket)
                    if ref.kind == "input":
                        input_grads[:, ref.index] += per_sample
                    else:
                        weight_grads[ref.index] += per_sample.sum()
            bra, bscr = self._apply_adj_step(step, gate_mat, bra, bscr, batch)

        pool = self._pools.get(batch)
        if pool is not None:
            pool["adj"] = [bra, bscr, dket]
            # Return the record's buffer pair to the pool for reuse.
            pool["fwd"] = [ket, kscr]
        self._last = None
        return input_grads, weight_grads
