"""Measurement post-processing on batched statevectors.

The paper's hybrid models read out one Pauli-Z expectation value per qubit;
these become the activations fed to the final classical layer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ShapeError, WireError
from .state import abs2, num_qubits

__all__ = ["expval_z", "apply_z_linear_combination", "marginal_probabilities"]


def expval_z(
    state: np.ndarray, wires: Sequence[int] | None = None
) -> np.ndarray:
    """Per-wire Pauli-Z expectations, shape ``(B, len(wires))``.

    ``<Z_w> = P(bit_w = 0) - P(bit_w = 1)``.
    """
    n = num_qubits(state)
    if wires is None:
        wires = range(n)
    wires = list(wires)
    for w in wires:
        if not 0 <= w < n:
            raise WireError(f"wire {w} out of range for {n} qubits")
    probs = abs2(state)
    out = np.empty((state.shape[0], len(wires)), dtype=np.float64)
    axes = tuple(range(1, n + 1))
    for j, w in enumerate(wires):
        reduce_axes = tuple(a for a in axes if a != w + 1)
        marg = probs.sum(axis=reduce_axes)  # (B, 2) for wire w
        out[:, j] = marg[:, 0] - marg[:, 1]
    return out


def apply_z_linear_combination(
    state: np.ndarray, coeffs: np.ndarray, wires: Sequence[int] | None = None
) -> np.ndarray:
    """Apply the per-sample operator ``sum_k coeffs[b, k] * Z_{wires[k]}``.

    This is the seed "bra" of the adjoint differentiation sweep: the
    vector-Jacobian product of a batch loss with per-wire Z expectations is
    exactly ``O_b |psi_b>`` with ``O_b = sum_k g_{bk} Z_k``.
    """
    n = num_qubits(state)
    if wires is None:
        wires = range(n)
    wires = list(wires)
    coeffs = np.asarray(coeffs, dtype=np.float64)
    if coeffs.shape != (state.shape[0], len(wires)):
        raise ShapeError(
            f"coeffs must be (batch, {len(wires)}), got {coeffs.shape}"
        )
    out = np.zeros_like(state)
    for k, w in enumerate(wires):
        signed = state.copy()
        sel: list = [slice(None)] * state.ndim
        sel[w + 1] = 1
        signed[tuple(sel)] *= -1.0
        c = coeffs[:, k].reshape((-1,) + (1,) * n)
        out += c * signed
    return out


def marginal_probabilities(state: np.ndarray, wire: int) -> np.ndarray:
    """``(B, 2)`` marginal distribution of a single wire."""
    n = num_qubits(state)
    if not 0 <= wire < n:
        raise WireError(f"wire {wire} out of range for {n} qubits")
    probs = abs2(state)
    reduce_axes = tuple(a for a in range(1, n + 1) if a != wire + 1)
    return probs.sum(axis=reduce_axes)
