"""Adjoint differentiation of circuit expectation values.

The paper trains its HQNNs by backpropagating *through the classical
simulation* of the quantum layer (PennyLane's ``default.qubit`` with the
TensorFlow interface).  The adjoint method computes the exact same
gradients with O(#gates) statevector sweeps instead of taping every
intermediate array, which is the standard high-performance substitute
(see Jones & Gacon, arXiv:2009.02823).

Given a tape ``U_N ... U_1 |0>``, per-wire Z expectations ``E_k`` and an
upstream gradient ``g_{bk} = dL/dE_{bk}``, we seed

    ``|bra_b> = (sum_k g_{bk} Z_k) |psi_b>``

and sweep the tape in reverse.  For each parametrized gate the
contribution is ``2 Re <bra | dU/dtheta | ket>`` evaluated per batch
sample; ``input`` parameters keep their per-sample gradient (routed back
to the encoded features) while ``weight`` parameters are summed over the
batch (shared trainable angles).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import GateError
from .circuit import Operation, _apply_inverse
from .measurements import apply_z_linear_combination
from .state import apply_single_qubit, as_matrix, double_real_overlap

__all__ = ["adjoint_gradients"]


def adjoint_gradients(
    ops: Sequence[Operation],
    final_state: np.ndarray,
    grad_out: np.ndarray,
    n_inputs: int,
    n_weights: int,
    measure_wires: Sequence[int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vector-Jacobian product through a circuit with Z-expval outputs.

    Parameters
    ----------
    ops:
        The executed tape.
    final_state:
        Batched state produced by :func:`repro.quantum.circuit.run`.
    grad_out:
        Upstream gradient ``dL/dE`` with shape ``(B, n_measured_wires)``.
    n_inputs, n_weights:
        Sizes of the gradient vectors to produce.
    measure_wires:
        Wires whose Z expectations were measured (default: all).

    Returns
    -------
    (input_grads, weight_grads):
        ``input_grads`` has shape ``(B, n_inputs)`` (per-sample gradients
        w.r.t. encoded features); ``weight_grads`` has shape
        ``(n_weights,)`` (summed over the batch).
    """
    batch = final_state.shape[0]
    input_grads = np.zeros((batch, n_inputs), dtype=np.float64)
    weight_grads = np.zeros(n_weights, dtype=np.float64)

    bra = apply_z_linear_combination(final_state, grad_out, measure_wires)
    ket = final_state

    for op in reversed(ops):
        ket = _apply_inverse(ket, op)
        if op.is_trainable:
            if len(op.wires) != 1:
                raise GateError(
                    f"adjoint differentiation supports single-qubit "
                    f"parametrized gates, got {op.name} on {op.wires}"
                )
            derivs = op.deriv_matrices()
            wire = op.wires[0]
            bra_flat = as_matrix(bra)
            for d_mat, ref in zip(derivs, op.refs):
                if ref is None:
                    continue
                d_ket = as_matrix(apply_single_qubit(ket, d_mat, wire))
                per_sample = double_real_overlap(bra_flat, d_ket)
                if ref.kind == "input":
                    input_grads[:, ref.index] += per_sample
                else:
                    weight_grads[ref.index] += per_sample.sum()
        bra = _apply_inverse(bra, op)

    return input_grads, weight_grads
