"""Circuit templates used by the paper's hybrid models.

Three templates, matching their PennyLane namesakes:

* :func:`angle_embedding` — one single-qubit rotation per feature
  (the paper uses angle encoding, one qubit per encoded feature).
* :func:`basic_entangler_layers` — the paper's **BEL** ansatz: per layer,
  one single-parameter rotation on every qubit (RY, per the paper's
  Fig. 5) followed by a closed ring of CNOTs.
* :func:`strongly_entangling_layers` — the paper's **SEL** ansatz: per
  layer, a general ``Rot(phi, theta, omega)`` on every qubit followed by a
  CNOT ring whose range cycles with the layer index (PennyLane's default
  ``r = l mod (n-1) + 1``).

All builders return plain tapes (lists of
:class:`repro.quantum.circuit.Operation`); parameter provenance is encoded
via :class:`~repro.quantum.circuit.ParamRef` so differentiation backends
can route gradients to inputs or flattened weights.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from .circuit import Operation, input_ref, weight_ref

__all__ = [
    "angle_embedding",
    "angle_embedding_structure",
    "basic_entangler_layers",
    "strongly_entangling_layers",
    "bel_weight_shape",
    "sel_weight_shape",
    "bel_param_count",
    "sel_param_count",
    "sel_ranges",
    "random_bel_weights",
    "random_sel_weights",
]

_ROTATIONS = ("X", "Y", "Z")


def _rotation_name(rotation: str) -> str:
    if rotation.upper() not in _ROTATIONS:
        raise ConfigurationError(
            f"rotation must be one of {_ROTATIONS}, got {rotation!r}"
        )
    return "R" + rotation.upper()


def angle_embedding(
    features: np.ndarray, n_qubits: int, rotation: str = "Y"
) -> list[Operation]:
    """Encode up to ``n_qubits`` features as rotation angles.

    ``features`` has shape ``(B, k)`` with ``k <= n_qubits`` (one qubit per
    feature, PennyLane semantics).  Each encoded gate carries an
    ``input`` :class:`ParamRef` so gradients flow back to the data.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ShapeError(
            f"features must be (batch, k), got shape {features.shape}"
        )
    k = features.shape[1]
    if k > n_qubits:
        raise ShapeError(
            f"{k} features need {k} qubits, register only has {n_qubits}"
        )
    name = _rotation_name(rotation)
    return [
        Operation(name, (w,), (features[:, w],), (input_ref(w),))
        for w in range(k)
    ]


def angle_embedding_structure(
    n_features: int, n_qubits: int, rotation: str = "Y"
) -> list[Operation]:
    """Structural (placeholder-angle) version of :func:`angle_embedding`.

    Used to compile a circuit once before any data is seen: each encoding
    gate carries a zero placeholder angle plus the ``input`` ref that the
    compiled engine (:mod:`repro.quantum.engine`) rebinds per batch.
    """
    if n_features > n_qubits:
        raise ShapeError(
            f"{n_features} features need {n_features} qubits, "
            f"register only has {n_qubits}"
        )
    name = _rotation_name(rotation)
    return [
        Operation(name, (w,), (0.0,), (input_ref(w),))
        for w in range(n_features)
    ]


def _cnot_ring(n_qubits: int, offset: int = 1) -> list[Operation]:
    """Closed ring of CNOTs ``(i, (i + offset) mod n)``.

    Follows PennyLane: with two qubits a full ring would apply the same
    CNOT twice, so only a single CNOT is emitted; a single qubit gets no
    entangler at all.
    """
    if n_qubits == 1:
        return []
    if n_qubits == 2:
        return [Operation("CNOT", (0, 1))]
    return [
        Operation("CNOT", (i, (i + offset) % n_qubits))
        for i in range(n_qubits)
    ]


def bel_weight_shape(n_layers: int, n_qubits: int) -> tuple[int, int]:
    """Weight shape for :func:`basic_entangler_layers`."""
    return (n_layers, n_qubits)


def sel_weight_shape(n_layers: int, n_qubits: int) -> tuple[int, int, int]:
    """Weight shape for :func:`strongly_entangling_layers`."""
    return (n_layers, n_qubits, 3)


def bel_param_count(n_layers: int, n_qubits: int) -> int:
    """Trainable parameters of a BEL ansatz."""
    return n_layers * n_qubits


def sel_param_count(n_layers: int, n_qubits: int) -> int:
    """Trainable parameters of an SEL ansatz."""
    return 3 * n_layers * n_qubits


def sel_ranges(n_layers: int, n_qubits: int) -> tuple[int, ...]:
    """PennyLane's default entangling ranges: ``r_l = l mod (n-1) + 1``."""
    if n_qubits == 1:
        return (0,) * n_layers
    return tuple(l % (n_qubits - 1) + 1 for l in range(n_layers))


def _check_weights(weights: np.ndarray, expected: tuple[int, ...], what: str):
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != expected:
        raise ShapeError(
            f"{what} weights must have shape {expected}, got {weights.shape}"
        )
    return weights


def basic_entangler_layers(
    weights: np.ndarray, n_qubits: int, rotation: str = "Y"
) -> list[Operation]:
    """BEL ansatz tape for weights of shape ``(n_layers, n_qubits)``.

    Weight ``(l, i)`` maps to flat index ``l * n_qubits + i`` in the
    gradient vector.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != n_qubits:
        raise ShapeError(
            f"BEL weights must be (n_layers, {n_qubits}), got {weights.shape}"
        )
    name = _rotation_name(rotation)
    ops: list[Operation] = []
    n_layers = weights.shape[0]
    for l in range(n_layers):
        for i in range(n_qubits):
            flat = l * n_qubits + i
            ops.append(
                Operation(name, (i,), (weights[l, i],), (weight_ref(flat),))
            )
        ops.extend(_cnot_ring(n_qubits))
    return ops


def strongly_entangling_layers(
    weights: np.ndarray,
    n_qubits: int,
    ranges: tuple[int, ...] | None = None,
) -> list[Operation]:
    """SEL ansatz tape for weights of shape ``(n_layers, n_qubits, 3)``.

    Weight ``(l, i, k)`` maps to flat index ``(l * n_qubits + i) * 3 + k``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3 or weights.shape[1:] != (n_qubits, 3):
        raise ShapeError(
            f"SEL weights must be (n_layers, {n_qubits}, 3), "
            f"got {weights.shape}"
        )
    n_layers = weights.shape[0]
    if ranges is None:
        ranges = sel_ranges(n_layers, n_qubits)
    if len(ranges) != n_layers:
        raise ConfigurationError(
            f"need one range per layer ({n_layers}), got {len(ranges)}"
        )
    ops: list[Operation] = []
    for l in range(n_layers):
        for i in range(n_qubits):
            base = (l * n_qubits + i) * 3
            ops.append(
                Operation(
                    "Rot",
                    (i,),
                    tuple(weights[l, i, k] for k in range(3)),
                    tuple(weight_ref(base + k) for k in range(3)),
                )
            )
        ops.extend(_cnot_ring(n_qubits, offset=ranges[l]))
    return ops


def random_bel_weights(
    n_layers: int, n_qubits: int, rng: np.random.Generator
) -> np.ndarray:
    """PennyLane-style initialization: uniform angles in ``[0, 2*pi)``."""
    return rng.uniform(0.0, 2.0 * np.pi, size=bel_weight_shape(n_layers, n_qubits))


def random_sel_weights(
    n_layers: int, n_qubits: int, rng: np.random.Generator
) -> np.ndarray:
    """PennyLane-style initialization: uniform angles in ``[0, 2*pi)``."""
    return rng.uniform(0.0, 2.0 * np.pi, size=sel_weight_shape(n_layers, n_qubits))
