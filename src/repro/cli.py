"""Command-line interface.

Examples::

    repro fig4  --profile smoke
    repro fig6  --profile reduced --cache results/
    repro fig10 --profile reduced --cache results/
    repro table1 --profile smoke
    repro all --profile smoke --cache results/

Figures are emitted as text tables (the numeric series the paper plots);
``--cache`` reuses protocol results across drivers so e.g. fig9/fig10
do not re-run the searches fig6/7/8 already performed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .experiments import (
    fig4_dataset_complexity,
    fig6_classical_flops,
    fig7_bel_flops,
    fig8_sel_flops,
    fig9_parameters,
    fig10_comparative,
    table1_ablation,
)
from .experiments.runner import PROFILES

__all__ = ["main", "build_parser"]

_EXPERIMENTS = ("fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "table1")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Computational Advantage in Hybrid Quantum Neural "
            "Networks: Myth or Reality?' (DAC 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ("all", "cluster-agent"),
        help="which paper artifact to regenerate, or 'cluster-agent' to "
        "serve training chunks from a shared --spool directory or a "
        "--connect HOST:PORT coordinator",
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=sorted(PROFILES),
        help="run scale: smoke (seconds), reduced (minutes), full (paper)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="directory for cached protocol results (reused across drivers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per grid search (1 = sequential, 0 = all "
        "cores); results are identical for any value, only wall time "
        "changes",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        metavar="R",
        help="override the profile's runs per candidate (changes results; "
        "cached results are keyed separately)",
    )
    parser.add_argument(
        "--no-vectorized-runs",
        action="store_true",
        help="train a candidate's runs one by one instead of as one "
        "run-stacked sweep; results are identical either way, only wall "
        "time changes",
    )
    parser.add_argument(
        "--no-stacked-candidates",
        action="store_true",
        help="do not merge same-structure candidates' run sets into one "
        "cross-candidate fused sweep; results are identical either way, "
        "only wall time changes",
    )
    parser.add_argument(
        "--cost-cache",
        default=None,
        metavar="PATH",
        help="JSON file persisting the measured chunk-cost model across "
        "invocations so adaptive packing is warm on the first search of "
        "a rerun (default: chunk_costs.json inside --cache when both "
        "--cache and --workers > 1 are given)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="JSONL checkpoint journal: every committed candidate of every "
        "grid search is appended durably, and rerunning the same "
        "configuration against the same journal resumes past the "
        "completed prefix with bit-identical results (each search of "
        "the protocol writes its own derived file next to this path, "
        "e.g. ckpt-f4-e0.jsonl, and journals compact to the valid "
        "committed prefix on resume)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="how many times a parallel search re-executes a chunk lost to "
        "a worker death, hard timeout, or runtime error before finishing "
        "the sweep in-process sequentially (default: 2); never changes "
        "results",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "torch", "cupy"),
        help="array backend for the stacked training sweeps (default: "
        "REPRO_BACKEND env var, then numpy); numpy is the bit-exact "
        "reference, torch/cupy keep the fused sweeps device-resident "
        "and fall back to numpy with a warning when unimportable",
    )
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="memory budget for the speculative runtime, e.g. 2G, 512M, "
        "or a plain byte count; 'off' disables governance (default: "
        "the REPRO_MEMORY_BUDGET env var, then an automatic fraction "
        "of free memory); budgets size stacked groups and bound "
        "in-flight bytes, and never change results",
    )
    parser.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="shared-filesystem spool directory for cross-host sharding: "
        "experiments run their grid searches as cluster coordinators "
        "leasing chunks to 'repro cluster-agent --spool DIR' processes "
        "on any host sharing the filesystem; results are bit-identical "
        "to a local run, and losing every agent degrades to in-process "
        "sequential execution (see docs/parallel_runtime.md)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="TCP cluster transport for filesystem-less rigs: experiments "
        "bind the address and run their grid searches as coordinators "
        "leasing chunks to 'repro cluster-agent --connect HOST:PORT' "
        "processes over checksummed frames; results are bit-identical "
        "to a local run, and losing every agent degrades to in-process "
        "sequential execution (mutually exclusive with --spool)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="S",
        help="cluster-agent only: exit after this many seconds with no "
        "claimable work (default: serve until the coordinator stops -- "
        "the spool's stop file, or the TCP coordinator going away for "
        "longer than the reconnect window)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="S",
        help="coordinator only: reclaim a chunk lease after this many "
        "seconds of agent silence, judged on the coordinator's own "
        "monotonic clock (default: 60); never changes results",
    )
    parser.add_argument(
        "--frame-timeout",
        type=float,
        default=None,
        metavar="S",
        help="TCP only: a frame that started arriving must keep moving -- "
        "any single socket read or write stalling past this many "
        "seconds marks the connection dead (default: 30); never "
        "changes results",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-experiment progress lines",
    )
    return parser


def validate_args(parser: argparse.ArgumentParser, args) -> None:
    """Reject invalid numeric knobs with a parser error (exit code 2)."""
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.runs is not None and args.runs < 1:
        parser.error(f"--runs must be >= 1, got {args.runs}")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.memory_budget is not None:
        from .exceptions import ConfigurationError
        from .runtime.memory import parse_memory_budget

        try:
            parse_memory_budget(args.memory_budget)
        except ConfigurationError as exc:
            parser.error(str(exc))
    if args.spool and args.connect:
        parser.error("--spool and --connect are mutually exclusive")
    if args.experiment == "cluster-agent" and not (args.spool or args.connect):
        parser.error(
            "cluster-agent requires --spool DIR or --connect HOST:PORT"
        )
    if args.idle_timeout is not None and args.idle_timeout <= 0:
        parser.error(
            f"--idle-timeout must be > 0, got {args.idle_timeout}"
        )
    if args.lease_timeout is not None and args.lease_timeout <= 0:
        parser.error(
            f"--lease-timeout must be > 0, got {args.lease_timeout}"
        )
    if args.frame_timeout is not None and args.frame_timeout <= 0:
        parser.error(
            f"--frame-timeout must be > 0, got {args.frame_timeout}"
        )
    if (args.spool or args.connect) and args.workers not in (0, 1):
        # Not an error -- the cluster transport simply takes precedence
        # -- but the combination suggests a misunderstanding worth
        # flagging early.
        flag = "--spool" if args.spool else "--connect"
        print(
            f"note: {flag} overrides --workers (chunks run on cluster "
            "agents, not a local pool)",
            file=sys.stderr,
        )


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def emit(message: str) -> None:
        print(f"  .. {message}", file=sys.stderr)

    return emit


def _dispatch(
    name: str,
    profile: str,
    cache: str | None,
    quiet: bool,
    workers: int = 1,
    pool=None,
    config_overrides: dict | None = None,
) -> str:
    progress = _progress_printer(quiet)
    kwargs = dict(
        cache_dir=cache, progress=progress, workers=workers, pool=pool
    )
    kwargs.update(config_overrides or {})
    if name == "fig4":
        return fig4_dataset_complexity.render(
            fig4_dataset_complexity.run(profile)
        )
    if name == "fig6":
        return fig6_classical_flops.render(
            fig6_classical_flops.run(profile, **kwargs)
        )
    if name == "fig7":
        return fig7_bel_flops.render(fig7_bel_flops.run(profile, **kwargs))
    if name == "fig8":
        return fig8_sel_flops.render(fig8_sel_flops.run(profile, **kwargs))
    if name == "fig9":
        return fig9_parameters.render(fig9_parameters.run(profile, **kwargs))
    if name == "fig10":
        results = fig10_comparative.run(profile, **kwargs)
        return fig10_comparative.render(fig10_comparative.analyze(results))
    if name == "table1":
        return table1_ablation.render(table1_ablation.run(profile, **kwargs))
    raise AssertionError(f"unhandled experiment {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    With ``--workers N`` (N != 1 after resolving 0 = all cores), one
    :class:`~repro.runtime.pool.PersistentPool` is created up front and
    shared by every experiment of the invocation — workers spin up once
    per ``repro`` run (lazily, on the first real search), not once per
    grid search, and each dataset is published to shared memory at most
    once per protocol run (publication is keyed on the split object;
    each level's segment is retired as soon as its level finishes).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_args(parser, args)
    if args.experiment == "cluster-agent":
        # Serve chunks until the coordinator stops (spool stop file, or
        # the TCP coordinator going away past the reconnect window) or
        # the idle timeout fires; no experiment runs here.
        if args.connect:
            from .runtime.cluster_tcp import run_tcp_agent

            agent_kwargs = {"idle_timeout_s": args.idle_timeout}
            if args.frame_timeout is not None:
                agent_kwargs["frame_timeout_s"] = args.frame_timeout
            stats = run_tcp_agent(args.connect, **agent_kwargs)
        else:
            from .runtime.cluster import run_agent

            stats = run_agent(args.spool, idle_timeout_s=args.idle_timeout)
        if not args.quiet:
            print(
                f"agent {stats.agent_id}: {stats.chunks_done} chunks, "
                f"{stats.claims_lost} claims lost, "
                f"{stats.cancelled} cancelled, "
                f"{stats.reconnects} reconnects",
                file=sys.stderr,
            )
        return 0
    targets = list(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    overrides: dict = {}
    if args.runs is not None:
        overrides["runs_per_candidate"] = args.runs
    if args.no_vectorized_runs:
        overrides["vectorized_runs"] = False
    if args.no_stacked_candidates:
        overrides["stacked_candidates"] = False
    if args.journal:
        overrides["journal"] = args.journal
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.memory_budget is not None:
        from .runtime.memory import parse_memory_budget

        overrides["memory_budget"] = parse_memory_budget(args.memory_budget)
    from .runtime.parallel import resolve_workers

    cluster = bool(args.spool or args.connect)
    pool = None
    if not cluster and resolve_workers(args.workers) > 1:
        from .runtime.pool import PersistentPool

        pool = PersistentPool(resolve_workers(args.workers), backend=args.backend)
    # Warm the adaptive packer from a previous invocation's measured
    # chunk costs; written back below (pool) or by the coordinator
    # itself (cluster transports) so reruns keep learning.  Cost
    # estimates shape submission order only, never results.
    cost_cache = args.cost_cache
    if cost_cache is None and args.cache and (pool is not None or cluster):
        from pathlib import Path

        cost_cache = str(Path(args.cache) / "chunk_costs.json")
    if pool is None and not cluster and args.cost_cache:
        # Sequential runs have no chunk scheduler, so there is nothing
        # to warm or record; say so instead of silently dropping it.
        print(
            "note: --cost-cache has no effect without --workers > 1",
            file=sys.stderr,
        )
    if pool is not None and cost_cache:
        pool.cost_model.load_json(cost_cache)
    if args.spool:
        from .runtime.cluster import SpoolConfig

        spool_kwargs: dict = {"cost_cache": cost_cache}
        if args.lease_timeout is not None:
            spool_kwargs["lease_timeout_s"] = args.lease_timeout
        overrides["spool"] = SpoolConfig(path=args.spool, **spool_kwargs)
    if args.connect:
        from .runtime.cluster_tcp import TcpConfig

        tcp_kwargs: dict = {"cost_cache": cost_cache}
        if args.lease_timeout is not None:
            tcp_kwargs["lease_timeout_s"] = args.lease_timeout
        if args.frame_timeout is not None:
            tcp_kwargs["frame_timeout_s"] = args.frame_timeout
        overrides["connect"] = TcpConfig(address=args.connect, **tcp_kwargs)
    try:
        for target in targets:
            print(
                _dispatch(
                    target,
                    args.profile,
                    args.cache,
                    args.quiet,
                    args.workers,
                    pool=pool,
                    config_overrides=overrides,
                )
            )
            print()
    finally:
        if pool is not None:
            if cost_cache and pool.cost_model.observations:
                pool.cost_model.save_json(cost_cache)
            pool.close()
        if args.spool:
            # Wind the cluster down: agents exit when they see the stop
            # file instead of idling on an empty spool forever.
            from .runtime.cluster import stop_agents

            stop_agents(args.spool)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
