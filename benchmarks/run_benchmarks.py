#!/usr/bin/env python
"""Run the benchmark suite and snapshot the results for perf tracking.

Writes ``benchmarks/BENCH_<rev>.json`` (``<rev>`` = short git revision,
or ``worktree`` when the tree is dirty/not a checkout) containing one
condensed entry per benchmark: mean / stddev / min runtimes in seconds
plus round counts.  Committing a snapshot per PR gives the repo a perf
trajectory that reviews can diff instead of re-measuring.

Usage:

    python benchmarks/run_benchmarks.py            # micro + grid-search suites
    python benchmarks/run_benchmarks.py --full     # every benchmark file
    python benchmarks/run_benchmarks.py --out PATH # explicit output path
    python benchmarks/run_benchmarks.py --quick    # smoke: run, don't time

``--quick`` executes every default benchmark body exactly once with
timing disabled and writes no snapshot — a fast CI smoke that keeps the
benchmark harness from silently rotting without burning minutes on
calibrated rounds.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent


def git_revision() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=REPO,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{rev}-dirty" if dirty else rev
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def condense(raw: dict) -> dict:
    """Keep the fields a perf-trajectory diff actually needs."""
    machine = raw.get("machine_info", {})
    snapshot = {
        "datetime": raw.get("datetime"),
        "python": machine.get("python_version"),
        "machine": machine.get("machine"),
        # Host-unique: lets snapshot diffs tell "same arch, different
        # box" apart from a genuine same-machine regression.
        "node": machine.get("node"),
        "cpu_count": os.cpu_count(),
        "benchmarks": {},
    }
    backends = set()
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        # Which array backend timed this entry (stamped by the benchmark
        # conftest; "numpy" for snapshots predating the field).  The
        # regression check refuses to read a backend switch as a
        # same-backend perf delta.
        backend = bench.get("extra_info", {}).get("backend", "numpy")
        backends.add(backend)
        snapshot["benchmarks"][bench["fullname"]] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
            "backend": backend,
        }
    snapshot["backends"] = sorted(backends)
    return snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run every benchmark file (the figure-level protocol "
        "benchmarks are minutes-scale), not just the substrate micro suite",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="output JSON path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: run each benchmark body once without timing "
        "and write no snapshot (for CI)",
    )
    args = parser.parse_args(argv)

    targets = (
        ["benchmarks"]
        if args.full
        else [
            "benchmarks/test_substrate_micro.py",
            "benchmarks/test_grid_search_parallel.py",
            "benchmarks/test_pool_reuse.py",
            "benchmarks/test_vectorized_runs.py",
            "benchmarks/test_candidate_stacking.py",
            "benchmarks/test_backend_sweep.py",
            "benchmarks/test_cluster_spool.py",
            "benchmarks/test_cluster_tcp.py",
        ]
    )
    rev = git_revision()
    out_path = args.out or REPO / "benchmarks" / f"BENCH_{rev}.json"

    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    if args.quick:
        result = subprocess.run(
            [sys.executable, "-m", "pytest", *targets,
             "--benchmark-disable", "-q"],
            cwd=REPO,
            env=env,
        )
        if result.returncode == 0:
            print("quick smoke ok (benchmark bodies ran once, untimed)")
        return result.returncode
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = pathlib.Path(tmp) / "bench.json"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                *targets,
                "--benchmark-only",
                f"--benchmark-json={raw_path}",
                "-q",
            ],
            cwd=REPO,
            env=env,
        )
        if result.returncode != 0:
            return result.returncode
        raw = json.loads(raw_path.read_text())

    snapshot = condense(raw)
    snapshot["rev"] = rev
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path} ({len(snapshot['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
