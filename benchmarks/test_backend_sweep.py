"""NumPy-vs-torch wall clock on the fused stacked sweeps.

One compiled SEL engine executes a candidate-stacked batch (5 stacked
run slices x minibatch 8 statevectors) at 4 and 8 qubits — the exact
shape :func:`repro.runtime.jobs.execute_candidates` drives — once per
array backend.  ``forward`` times the state sweep alone; ``step`` times
a recorded forward plus the adjoint gradient sweep, i.e. one training
step's quantum cost.

Backend names are baked into the benchmark ids (``...[numpy-4q]``,
``...[torch-8q]``), so ``scripts/check_bench_regression.py`` compares a
backend only against itself across snapshots — a torch timing can never
masquerade as a numpy regression (each entry also records its backend
in the snapshot metadata; see ``run_benchmarks.condense``).

The torch variants skip cleanly when torch is not importable, so the
committed snapshots on a numpy-only machine simply lack the torch rows.
"""

import numpy as np
import pytest

from repro.backends import BackendUnavailable, get_backend
from repro.quantum import (
    CompiledTape,
    angle_embedding,
    random_sel_weights,
    strongly_entangling_layers,
)

#: Stacked slices per sweep (candidates x runs of the fused path) and
#: the per-slice minibatch — reduced-profile-like shapes.
STACK = 5
MINIBATCH = 8
DEPTH = 2


def _backend_params():
    params = [pytest.param("numpy", id="numpy")]
    try:
        get_backend("torch")
        marks = ()
    except BackendUnavailable as exc:
        marks = (pytest.mark.skip(reason=str(exc)),)
    params.append(pytest.param("torch", id="torch", marks=marks))
    return params


@pytest.fixture(params=_backend_params())
def backend_name(request):
    return request.param


def _fused_case(n_qubits: int, backend_name: str):
    """A compiled SEL engine plus its stacked inputs on one backend.

    The case RNG is keyed on ``n_qubits`` alone so every backend (and
    the differential's reference) sees identical data.
    """
    rng = np.random.default_rng((11, n_qubits))
    batch = STACK * MINIBATCH
    x = rng.uniform(-1, 1, (batch, n_qubits))
    w = random_sel_weights(DEPTH, n_qubits, rng)
    tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
        w, n_qubits
    )
    engine = CompiledTape(tape, n_qubits, backend=get_backend(backend_name))
    grad = rng.standard_normal((batch, n_qubits))
    return engine, x, w.ravel(), grad, w.size


class TestBackendSweep:
    @pytest.mark.parametrize("n_qubits", [4, 8], ids=["4q", "8q"])
    def test_fused_forward(self, benchmark, backend_name, n_qubits):
        engine, x, flat, _, _ = _fused_case(n_qubits, backend_name)
        benchmark.extra_info["backend"] = backend_name
        xp = engine.backend

        def forward():
            engine.execute(x, flat)
            xp.synchronize()

        benchmark(forward)

    @pytest.mark.parametrize("n_qubits", [4, 8], ids=["4q", "8q"])
    def test_fused_forward_adjoint(self, benchmark, backend_name, n_qubits):
        engine, x, flat, grad, n_weights = _fused_case(n_qubits, backend_name)
        benchmark.extra_info["backend"] = backend_name
        xp = engine.backend

        def step():
            engine.execute(x, flat, record=True)
            out = engine.adjoint_gradients(grad, x.shape[1], n_weights)
            xp.synchronize()
            return out

        benchmark(step)

    def test_backends_agree(self, backend_name):
        """Tolerance differential: every backend matches the NumPy
        reference on the fused forward (not timed; keeps the benchmark
        pairs honest — both backends run the same workload)."""
        engine, x, flat, _, _ = _fused_case(4, backend_name)
        reference, _, _, _, _ = _fused_case(4, "numpy")
        got = engine.backend.to_numpy(engine.execute(x, flat))
        want = reference.execute(x, flat)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)
