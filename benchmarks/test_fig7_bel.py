"""Benchmark E4 — paper Fig. 7: FLOPs of best-performing hybrid (BEL)
models per complexity level (30 combinations per level)."""

from repro.core.search_space import hybrid_search_space
from repro.experiments import fig7_bel_flops


class TestFig7:
    def test_search_space_size(self):
        # the paper: "30 model combinations per feature size"
        assert len(hybrid_search_space(10, "bel")) == 30

    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        result = benchmark.pedantic(
            fig7_bel_flops.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        print()
        print(fig7_bel_flops.render(result))
        assert result.family == "bel"
        assert all(lvl.n_successes >= 1 for lvl in result.levels)
        # Winner identity is noisy at smoke scale (1 run, few epochs), so
        # the paper's growth trend is only asserted at reduced scale+.
        if bench_profile.name != "smoke":
            series = result.smallest_flops_series()
            assert series[-1] > series[0]
