"""Benchmark E1/E2 — paper Fig. 4: dataset generation and the
complexity-dial demonstration.

Fig. 4(b)'s claim: as the feature count grows, a fixed classifier's
accuracy falls while its training time rises.
"""

from repro.data import make_spiral, probe_complexity
from repro.experiments import fig4_dataset_complexity


class TestFig4a:
    def test_dataset_generation(self, benchmark):
        ds = benchmark(make_spiral, 10, n_points=1500, seed=0)
        assert ds.n_features == 10
        assert ds.class_counts().tolist() == [500, 500, 500]


class TestFig4b:
    def test_probe_regenerates_figure(self, benchmark):
        results = benchmark.pedantic(
            probe_complexity,
            kwargs=dict(
                feature_sizes=(10, 60, 110),
                n_points=300,
                epochs=20,
                batch_size=16,
            ),
            rounds=1,
            iterations=1,
        )
        print()
        print(fig4_dataset_complexity.render(results))
        # The paper's qualitative claim: the hardest level should not be
        # easier than the easiest one for a fixed model.
        assert results[-1].val_accuracy <= results[0].val_accuracy + 0.05
        assert results[-1].noise > results[0].noise
