"""Run-stacked vs per-run candidate training wall clock.

The innermost hot loop of every figure-reproduction experiment trains
one candidate ``runs`` times with an identical circuit structure.  The
run-vectorized engine executes all R runs as one stacked kernel sweep
per minibatch (``repro.nn.training.VectorizedTrainer`` over
``CompiledTape.execute(..., runs=R)``) instead of R scalar sweeps.

Two benchmarks pin the issue's acceptance target — stacked at least
1.5x faster than R sequential runs at runs=5, batch 8, 4 qubits — into
the committed ``BENCH_<rev>.json`` snapshots:

* ``test_per_run_training`` — R scalar ``execute_job`` calls (the
  pre-vectorization inner loop).
* ``test_stacked_training`` — one ``execute_runs`` stacked sweep over
  the same (seed, candidate, run) jobs; bit-identical metrics, one
  fused ``(R*B, 2**n)`` buffer instead of R ``(B, 2**n)`` ones.
"""

import pytest

from repro.core.grid_search import TrainingSettings
from repro.core.search_space import HybridSpec
from repro.data import make_spiral, stratified_split
from repro.runtime import execute_runs

_RUNS = 5
_SETTINGS = TrainingSettings(epochs=3, batch_size=8, runs=_RUNS)
_SPEC = HybridSpec(n_features=4, n_qubits=4, n_layers=2, ansatz="sel")


@pytest.fixture(scope="module")
def split():
    ds = make_spiral(4, n_points=96, noise=0.0, turns=0.8, seed=7)
    return stratified_split(ds, seed=7)


def _train(split, vectorized: bool):
    return execute_runs(
        _SPEC,
        7,
        0,
        range(_RUNS),
        split,
        _SETTINGS,
        vectorized=vectorized,
    )


class TestRunVectorizedTraining:
    def test_per_run_training(self, benchmark, split):
        results = benchmark.pedantic(
            lambda: _train(split, vectorized=False), rounds=3, iterations=1
        )
        assert len(results) == _RUNS

    def test_stacked_training(self, benchmark, split):
        results = benchmark.pedantic(
            lambda: _train(split, vectorized=True), rounds=3, iterations=1
        )
        assert len(results) == _RUNS
        # same metrics as the per-run loop — the snapshot's delta is
        # pure execution strategy
        reference = _train(split, vectorized=False)
        for got, ref in zip(results, reference):
            assert got.train_accuracy == ref.train_accuracy
            assert got.val_accuracy == ref.val_accuracy
            assert got.epochs_run == ref.epochs_run
