"""TCP-transport overhead: socket-sharded search vs sequential.

The TCP coordinator makes the same promise as the spool — "distribution
is free, determinism-wise" — over a partition-prone medium; this
benchmark makes the *time* cost visible in the committed
``BENCH_<rev>.json`` snapshots.  A loopback, single-agent run is a
pure-overhead configuration: every training second the sequential
baseline pays, plus framing, socket writes, acks, polling and
heartbeats.  The delta between the two entries is the transport tax a
real multi-host run amortizes across agents.

``test_tcp_frame_roundtrip`` isolates the per-message cost (frame +
send + receive + validate) over a real loopback socket pair, away from
any training work.
"""

import pickle
import socket
import threading

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.runtime.cluster_tcp import (
    TcpConfig,
    _recv_frame,
    _send_frame,
    run_tcp_agent,
)

_SETTINGS = TrainingSettings(epochs=8, batch_size=16, runs=2)


def _bench_case():
    ds = make_spiral(4, n_points=240, noise=0.0, turns=0.8, seed=7)
    split = stratified_split(ds, seed=7)
    space = classical_search_space(4, neuron_options=(2, 6), max_layers=1)
    return space, split


def _search(space, split, **kwargs):
    return grid_search(
        space,
        split,
        threshold=1.01,  # exhaust the space: a fixed amount of work
        settings=_SETTINGS,
        seed=3,
        **kwargs,
    )


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestTcpOverhead:
    def test_sequential_baseline(self, benchmark):
        space, split = _bench_case()
        outcome = benchmark.pedantic(
            lambda: _search(space, split, workers=1), rounds=2, iterations=1
        )
        assert outcome.candidates_trained == len(space)

    def test_tcp_single_agent(self, benchmark):
        space, split = _bench_case()
        cfg = TcpConfig(
            address=f"127.0.0.1:{_free_port()}",
            poll_interval_s=0.02,
        )
        stop = threading.Event()
        agent = threading.Thread(
            target=run_tcp_agent,
            args=(cfg.address,),
            kwargs=dict(poll_interval_s=0.02, heartbeat_s=0.5, stop=stop),
            daemon=True,
        )
        agent.start()
        try:
            outcome = benchmark.pedantic(
                lambda: _search(space, split, connect=cfg),
                rounds=2,
                iterations=1,
            )
        finally:
            stop.set()
            agent.join(timeout=30)
        assert outcome.candidates_trained == len(space)


class TestFraming:
    def test_tcp_frame_roundtrip(self, benchmark):
        _, split = _bench_case()
        payload = pickle.dumps(split, protocol=pickle.HIGHEST_PROTOCOL)
        server = socket.create_server(("127.0.0.1", 0))
        client = socket.create_connection(server.getsockname(), timeout=30)
        peer, _ = server.accept()
        peer.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        lock = threading.Lock()
        echo_halt = threading.Event()

        def echo():
            # The peer bounces every frame back, revalidating on each
            # side: one benchmark iteration = 2 sends + 2 checked reads.
            while not echo_halt.is_set():
                try:
                    blob = _recv_frame(peer, frame_timeout_s=30.0)
                except Exception:
                    return
                _send_frame(peer, blob, timeout_s=30.0, lock=lock)

        echo_thread = threading.Thread(target=echo, daemon=True)
        echo_thread.start()
        wlock = threading.Lock()

        def roundtrip():
            _send_frame(client, payload, timeout_s=30.0, lock=wlock)
            return _recv_frame(client, frame_timeout_s=30.0)

        try:
            out = benchmark(roundtrip)
        finally:
            echo_halt.set()
            for sock in (client, peer, server):
                try:
                    sock.close()
                except OSError:
                    pass
            echo_thread.join(timeout=5)
        assert out == payload
        benchmark.extra_info["payload_bytes"] = len(payload)
