"""Back-to-back search benchmarks: cold pool vs reused persistent pool.

The paper's protocol is many grid searches in sequence (one per
complexity level x experiment).  PR 2 paid pool spin-up plus a pickled
``DataSplit`` per worker for *each* search; the persistent pool pays
spin-up once per protocol run and ships datasets through shared memory
(workers attach zero-copy, the per-chunk payload is a ~constant-size
handle).

Two wall-clock benchmarks make the difference visible in the committed
``BENCH_<rev>.json`` snapshots:

* ``test_cold_pool_search`` — create a pool, run one search, tear the
  pool down: what every search paid before the persistent pool.
* ``test_reused_pool_search`` — the same search on an already-warm
  pool: what the second and every later search of a protocol run pays
  now.  The delta between the two is the amortized spin-up.

``test_ship_split_pickle`` vs ``test_ship_split_handle`` compare the
cost of the dataset bytes shipped per worker: pickling the full split
(the old initializer payload, once per worker per search) against
publishing once plus pickling the shared-memory handle (the new
per-chunk payload).
"""

import pickle

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.runtime import PersistentPool, publish_split

_SETTINGS = TrainingSettings(epochs=8, batch_size=16, runs=2)
_WORKERS = 2


def _bench_case():
    ds = make_spiral(4, n_points=240, noise=0.0, turns=0.8, seed=7)
    split = stratified_split(ds, seed=7)
    space = classical_search_space(4, neuron_options=(2, 6), max_layers=1)
    return space, split


@pytest.fixture(scope="module")
def warm_pool():
    with PersistentPool(_WORKERS) as pool:
        yield pool


def _search(split, space, pool=None, workers=1):
    return grid_search(
        space,
        split,
        threshold=1.01,  # exhaust the space: a fixed amount of work
        settings=_SETTINGS,
        seed=3,
        workers=workers,
        pool=pool,
    )


class TestBackToBackSearches:
    def test_cold_pool_search(self, benchmark):
        space, split = _bench_case()

        def cold():
            with PersistentPool(_WORKERS) as pool:
                return _search(split, space, pool=pool)

        outcome = benchmark.pedantic(cold, rounds=2, iterations=1)
        assert outcome.candidates_trained == len(space)

    def test_reused_pool_search(self, benchmark, warm_pool):
        space, split = _bench_case()
        # Prime: the first search on the pool publishes the dataset and
        # warms worker caches; the benchmark then measures what every
        # later back-to-back search pays.
        _search(split, space, pool=warm_pool)
        searches_before = warm_pool.searches_started
        pids_before = warm_pool.worker_pids()

        outcome = benchmark.pedantic(
            lambda: _search(split, space, pool=warm_pool),
            rounds=2,
            iterations=1,
        )
        assert outcome.candidates_trained == len(space)
        # The measured searches reused the same workers — no spin-up.
        assert warm_pool.worker_pids() == pids_before
        assert warm_pool.searches_started > searches_before


class TestDatasetShipping:
    """Bytes shipped per worker: pickled split vs shared-memory attach."""

    def test_ship_split_pickle(self, benchmark):
        _, split = _bench_case()
        payload = benchmark(lambda: pickle.dumps(split))
        benchmark.extra_info["payload_bytes"] = len(payload)

    def test_ship_split_handle(self, benchmark):
        _, split = _bench_case()
        shm, handle = publish_split(split)
        try:
            payload = benchmark(lambda: pickle.dumps(handle))
            benchmark.extra_info["payload_bytes"] = len(payload)
            # The zero-copy claim, recorded next to the timing: the
            # handle is orders of magnitude smaller than the dataset.
            assert len(payload) < len(pickle.dumps(split)) / 10
        finally:
            shm.close()
            shm.unlink()
