"""Benchmark E3 — paper Fig. 6: FLOPs of best-performing classical
models per complexity level (grid search over 155 combinations)."""

from repro.core.search_space import classical_search_space
from repro.experiments import fig6_classical_flops


class TestFig6:
    def test_search_space_size(self):
        # the paper: "155 model combinations ... for each complexity level"
        assert len(classical_search_space(10)) == 155

    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        result = benchmark.pedantic(
            fig6_classical_flops.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        print()
        print(fig6_classical_flops.render(result))
        assert result.family == "classical"
        # every level produced at least one winning model
        assert all(lvl.n_successes >= 1 for lvl in result.levels)
        # FLOPs grow with problem complexity (the paper's core trend).
        # Winner identity is noisy at smoke scale (1 run, few epochs), so
        # the trend is only asserted at reduced scale and above.
        if bench_profile.name != "smoke":
            series = result.smallest_flops_series()
            assert series[-1] > series[0]
