"""Benchmark suite package.

Exists so pytest imports benchmark modules as ``benchmarks.<name>``:
benchmark files deliberately mirror their test-suite counterparts'
basenames (``test_cluster_tcp.py`` lives both here and under
``tests/runtime/``), and without a package marker pytest would reject
the duplicate top-level module names at collection time.
"""
