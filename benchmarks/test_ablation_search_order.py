"""Ablation bench (beyond the paper): does FLOPs-sorting the candidates
actually save work?

The paper's section III-E argues that training candidates in ascending
FLOPs order avoids training most of the space.  We quantify it: compare
the compute spent (candidates trained / wall time) by the sorted search
versus an adversarial descending order on the same level.
"""

import numpy as np

from repro.core.grid_search import TrainingSettings, grid_search, rank_by_flops
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split

SETTINGS = TrainingSettings(
    epochs=25, batch_size=8, runs=1, early_stop_threshold=0.8
)


def _split():
    ds = make_spiral(6, n_points=240, noise=0.05, turns=0.5, seed=2)
    return stratified_split(ds, seed=2)


def _space():
    return classical_search_space(6, neuron_options=(2, 6, 10), max_layers=2)


class TestSearchOrderAblation:
    def test_sorted_search_bench(self, benchmark):
        split = _split()
        outcome = benchmark.pedantic(
            grid_search,
            args=(_space(), split),
            kwargs=dict(threshold=0.8, settings=SETTINGS, seed=4),
            rounds=1,
            iterations=1,
        )
        assert outcome.succeeded

    def test_sorted_order_trains_cheaper_models_first(self):
        split = _split()
        sorted_outcome = grid_search(
            _space(), split, threshold=0.8, settings=SETTINGS, seed=4
        )
        # Adversarial order: most expensive first.  Emulate by capping the
        # sorted search out and comparing against the descending ranking.
        descending = list(reversed(rank_by_flops(_space())))
        first_expensive = descending[0]
        assert sorted_outcome.succeeded
        winner = sorted_outcome.winner
        # The sorted search never trains anything more expensive than its
        # winner; the descending order would have started at the maximum.
        assert winner.flops <= first_expensive.flops()
        trained_flops = [c.flops for c in sorted_outcome.evaluated]
        assert max(trained_flops) == winner.flops

    def test_winner_is_flops_minimal_among_passing(self):
        """Re-train every candidate the sorted search skipped is too
        expensive; instead verify the invariant on the evaluated prefix:
        the winner is the only passing candidate and everything cheaper
        failed."""
        split = _split()
        outcome = grid_search(
            _space(), split, threshold=0.8, settings=SETTINGS, seed=4
        )
        assert outcome.succeeded
        for candidate in outcome.evaluated[:-1]:
            assert not candidate.passes(0.8)
            assert candidate.flops <= outcome.winner.flops
