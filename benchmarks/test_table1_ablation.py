"""Benchmark E8 — paper Table I: FLOPs breakdown of hybrid networks into
encoding / classical-layer / quantum-layer components."""

import pytest

from repro.core.search_space import HybridSpec
from repro.experiments import table1_ablation
from repro.flops import hybrid_flops_breakdown


class TestTable1:
    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        rows = benchmark.pedantic(
            table1_ablation.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        print()
        print(table1_ablation.render(rows))
        assert set(rows) == {"bel", "sel"}

    def test_encoding_constant_in_feature_size(self, protocol_results):
        """Paper: the Enc column depends only on the qubit count."""
        for family in ("bel", "sel"):
            rows = table1_ablation.rows_from_protocol(
                protocol_results[family]
            )
            by_qubits = {}
            for row in rows:
                by_qubits.setdefault(row.n_qubits, set()).add(row.enc)
            for encodings in by_qubits.values():
                assert len(encodings) == 1

    def test_total_equals_components(self, protocol_results):
        for family in ("bel", "sel"):
            for row in table1_ablation.rows_from_protocol(
                protocol_results[family]
            ):
                assert row.total == row.enc_plus_cl + row.ql
                assert row.enc_plus_cl == row.enc + row.cl

    @pytest.mark.parametrize(
        "convention", ["paper", "first_principles", "parameter_shift"]
    )
    def test_cl_grows_linearly_with_features(self, convention):
        """CL column slope is exactly 6*q per feature under the paper
        convention and 6*q under first principles (same dense model)."""
        spec = dict(n_qubits=3, n_layers=2, ansatz="sel")
        cl = {
            fs: hybrid_flops_breakdown(
                fs, convention=convention, **spec
            ).classical
            for fs in (10, 40, 80, 110)
        }
        slope_a = (cl[40] - cl[10]) / 30
        slope_b = (cl[110] - cl[80]) / 30
        assert slope_a == slope_b == 6 * 3

    def test_paper_reference_consistency(self):
        """The published table itself satisfies TF = Enc + CL + QL."""
        for row in table1_ablation.paper_reference_rows():
            assert row.total == row.enc + row.cl + row.ql
