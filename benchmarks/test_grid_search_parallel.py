"""Grid-search wall-clock benchmark: sequential vs parallel runtime.

The paper's protocol is dominated by (candidate, run) training jobs, an
embarrassingly parallel workload.  These benchmarks measure the same
FLOPs-sorted search executed by the in-process sequential loop
(``workers=1``) and by the speculative process-pool scheduler
(``workers=4``), asserting outcome equality on the way.

The parallel speedup scales with physical cores: on a >= 4-core runner
``workers=4`` is expected to be >= 2.5x faster than sequential; on a
single-core machine the pool's process and pickling overhead makes it
*slower*, and the committed ``BENCH_<rev>.json`` snapshot records
whichever machine ran it (``cpu_count`` is part of the snapshot).
"""

import numpy as np

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split

#: A search where eleven under-capacity candidates fail before the
#: twelfth passes (paper-style: most of the space is genuinely trained),
#: ~4.5 s sequential on one 2024 laptop core.  Sized so per-candidate
#: training dominates worker startup (~0.2 s with the warm forkserver):
#: the parallel speedup measured here reflects the scheduler, not pool
#: boot.
_SETTINGS = TrainingSettings(
    epochs=40, batch_size=8, runs=3, early_stop_threshold=0.90
)


def _bench_case():
    ds = make_spiral(4, n_points=300, noise=0.0, turns=0.8, seed=7)
    split = stratified_split(ds, seed=7)
    space = classical_search_space(4, neuron_options=(2, 6, 10), max_layers=2)
    return space, split


def _search(workers):
    space, split = _bench_case()
    return grid_search(
        space,
        split,
        threshold=0.90,
        settings=_SETTINGS,
        seed=3,
        workers=workers,
    )


class TestGridSearchWallClock:
    def test_sequential_workers1(self, benchmark):
        outcome = benchmark.pedantic(
            _search, args=(1,), rounds=2, iterations=1
        )
        assert outcome.succeeded

    def test_parallel_workers4(self, benchmark):
        # Outcome equality with the sequential path is asserted by
        # tests/runtime/test_parallel_search.py; here we only time it.
        outcome = benchmark.pedantic(
            _search, args=(4,), rounds=2, iterations=1
        )
        assert outcome.succeeded


class TestSmallBatchKernels:
    """The small-operand kernel specialization (trailing-wire matmul,
    fused CNOT rings, vectorized adjoint derivs): one SEL training step
    (forward + adjoint) at the paper's batch size 8, where per-call
    dispatch overhead used to dominate."""

    def test_sel_step_batch8_4q(self, benchmark):
        from repro.quantum import (
            CompiledTape,
            angle_embedding,
            random_sel_weights,
            strongly_entangling_layers,
        )

        rng = np.random.default_rng(0)
        n_qubits, batch = 4, 8
        x = rng.uniform(-1, 1, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, rng)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        engine = CompiledTape(tape, n_qubits)
        flat = w.ravel()
        grad = rng.standard_normal((batch, n_qubits))

        def step():
            engine.execute(inputs=x, weights=flat, record=True)
            return engine.adjoint_gradients(grad, n_qubits, w.size)

        benchmark(step)
