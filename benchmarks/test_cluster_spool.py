"""Spool-transport overhead: cluster-sharded search vs sequential.

The spool coordinator promises "distribution is free, determinism-wise"
— this benchmark makes the *time* cost visible in the committed
``BENCH_<rev>.json`` snapshots.  A single-host, single-agent spool run
is a pure-overhead configuration: every training second the sequential
baseline pays, plus framing, fsyncs, atomic renames, polling and
heartbeats.  The delta between the two entries is the transport tax a
real multi-host run amortizes across agents.

``test_spool_frame_roundtrip`` isolates the per-file framing cost
(header pack + SHA-256 + validate) from the filesystem traffic.
"""

import pickle
import threading

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import classical_search_space
from repro.data import make_spiral, stratified_split
from repro.runtime.cluster import (
    SpoolConfig,
    _frame,
    _unframe,
    run_agent,
    stop_agents,
)

_SETTINGS = TrainingSettings(epochs=8, batch_size=16, runs=2)


def _bench_case():
    ds = make_spiral(4, n_points=240, noise=0.0, turns=0.8, seed=7)
    split = stratified_split(ds, seed=7)
    space = classical_search_space(4, neuron_options=(2, 6), max_layers=1)
    return space, split


def _search(space, split, **kwargs):
    return grid_search(
        space,
        split,
        threshold=1.01,  # exhaust the space: a fixed amount of work
        settings=_SETTINGS,
        seed=3,
        **kwargs,
    )


class TestSpoolOverhead:
    def test_sequential_baseline(self, benchmark):
        space, split = _bench_case()
        outcome = benchmark.pedantic(
            lambda: _search(space, split, workers=1), rounds=2, iterations=1
        )
        assert outcome.candidates_trained == len(space)

    def test_spool_single_agent(self, benchmark, tmp_path):
        space, split = _bench_case()
        spool = SpoolConfig(
            path=str(tmp_path / "spool"),
            poll_interval_s=0.02,
        )
        agent = threading.Thread(
            target=run_agent,
            args=(str(spool.path),),
            kwargs=dict(poll_interval_s=0.02, heartbeat_s=0.5),
            daemon=True,
        )
        agent.start()
        try:
            outcome = benchmark.pedantic(
                lambda: _search(space, split, spool=spool),
                rounds=2,
                iterations=1,
            )
        finally:
            stop_agents(spool.path)
            agent.join(timeout=30)
        assert outcome.candidates_trained == len(space)


class TestFraming:
    def test_spool_frame_roundtrip(self, benchmark):
        _, split = _bench_case()
        payload = pickle.dumps(split, protocol=pickle.HIGHEST_PROTOCOL)

        def roundtrip():
            return _unframe(_frame(payload))

        out = benchmark(roundtrip)
        assert out == payload
        benchmark.extra_info["payload_bytes"] = len(payload)
