"""Ablation bench (beyond the paper): gradient-backend cost.

The paper backpropagates through the simulation (TF).  We compare our
two exact backends — adjoint (used for training) and parameter-shift
(hardware-realistic) — in measured wall time and in modeled FLOPs, as a
function of circuit depth.  Parameter-shift scales linearly in the
parameter count on top of the circuit cost, so the gap must widen with
depth.
"""

import numpy as np
import pytest

from repro.flops import PAPER, PARAMETER_SHIFT, quantum_layer_flops
from repro.quantum import (
    adjoint_gradients,
    angle_embedding,
    parameter_shift_gradients,
    random_sel_weights,
    run,
    strongly_entangling_layers,
)

RNG = np.random.default_rng(3)


def sel_case(n_layers, n_qubits=3, batch=16):
    x = RNG.uniform(-1, 1, (batch, n_qubits))
    w = random_sel_weights(n_layers, n_qubits, RNG)
    tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
        w, n_qubits
    )
    final = run(tape, n_qubits, batch)
    grad = RNG.standard_normal((batch, n_qubits))
    return tape, final, grad, n_qubits, batch, w.size


class TestGradientAblation:
    @pytest.mark.parametrize("n_layers", [1, 4])
    def test_adjoint_bench(self, benchmark, n_layers):
        tape, final, grad, q, _, n_w = sel_case(n_layers)
        benchmark(adjoint_gradients, tape, final, grad, q, n_w)

    @pytest.mark.parametrize("n_layers", [1, 4])
    def test_parameter_shift_bench(self, benchmark, n_layers):
        tape, _, grad, q, batch, n_w = sel_case(n_layers)
        benchmark(
            parameter_shift_gradients, tape, q, batch, grad, q, n_w
        )

    def test_modeled_cost_gap_widens_with_depth(self):
        shallow_tape, *_ = sel_case(1)
        deep_tape, *_ = sel_case(6)
        ratio = []
        for tape in (shallow_tape, deep_tape):
            backprop = quantum_layer_flops(PAPER, tape, 3).total
            shift = quantum_layer_flops(PARAMETER_SHIFT, tape, 3).total
            ratio.append(shift / backprop)
        assert ratio[1] > ratio[0] > 1.0

    def test_backends_agree_while_disagreeing_on_cost(self):
        """Same gradients, very different cost models: the whole point
        of keeping both backends."""
        tape, final, grad, q, batch, n_w = sel_case(2)
        gi_a, gw_a = adjoint_gradients(tape, final, grad, q, n_w)
        gi_s, gw_s = parameter_shift_gradients(
            tape, q, batch, grad, q, n_w
        )
        np.testing.assert_allclose(gi_a, gi_s, atol=1e-9)
        np.testing.assert_allclose(gw_a, gw_s, atol=1e-9)
