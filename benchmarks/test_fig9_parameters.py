"""Benchmark E6 — paper Fig. 9: parameter counts of the winning models
(three panels: classical, hybrid BEL, hybrid SEL)."""

from repro.experiments import fig9_parameters


class TestFig9:
    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        results = benchmark.pedantic(
            fig9_parameters.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        print()
        print(fig9_parameters.render(results))
        assert [r.family for r in results] == ["classical", "bel", "sel"]

    def test_classical_params_grow_with_complexity(
        self, protocol_results, bench_profile
    ):
        import pytest

        if bench_profile.name == "smoke":
            pytest.skip("winner identity too noisy at smoke scale")
        series = protocol_results["classical"].smallest_params_series()
        assert series[-1] > series[0]

    def test_hybrid_params_grow_slower_than_classical(
        self, protocol_results, bench_profile
    ):
        """Paper abstract: HQNN parameter counts grow slower with problem
        complexity (81.4% vs 88.5% relative rate).  At smoke scale the
        absolute comparison is not meaningful (the tiny budget rarely
        needs more than the minimum model), so assert there."""
        import pytest

        if bench_profile.name == "smoke":
            pytest.skip("parameter-scale comparison needs >= reduced profile")
        classical = protocol_results["classical"].smallest_params_series()
        sel = protocol_results["sel"].smallest_params_series()
        classical_rate = (classical[-1] - classical[0]) / classical[-1]
        sel_rate = (sel[-1] - sel[0]) / sel[-1]
        assert sel_rate < classical_rate or sel[-1] < classical[-1]
