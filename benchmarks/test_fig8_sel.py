"""Benchmark E5 — paper Fig. 8: FLOPs of best-performing hybrid (SEL)
models per complexity level.

The paper's finding for SEL: the same small circuit suffices at every
complexity level, so FLOPs growth comes from the classical input layer
only.
"""

from repro.core.search_space import HybridSpec
from repro.experiments import fig8_sel_flops
from repro.flops import hybrid_flops_breakdown


class TestFig8:
    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        result = benchmark.pedantic(
            fig8_sel_flops.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        print()
        print(fig8_sel_flops.render(result))
        assert result.family == "sel"
        assert all(lvl.n_successes >= 1 for lvl in result.levels)

    def test_sel_quantum_flops_constant_for_fixed_circuit(self):
        """With the circuit fixed at (3 qubits, 2 layers), the quantum
        component is identical at every complexity level — only the
        classical input layer grows (the paper's Fig. 8 discussion)."""
        quantum = {
            fs: hybrid_flops_breakdown(fs, 3, 2, "sel").quantum
            for fs in (10, 40, 80, 110)
        }
        assert len(set(quantum.values())) == 1

    def test_winner_circuit_growth_bounded(self, protocol_results):
        """SEL winners should stay at small circuits across levels (they
        may wobble by a layer or a qubit between experiments, but must
        not approach the search-space maximum)."""
        result = protocol_results["sel"]
        for lvl in result.levels:
            winner = lvl.smallest_winner
            if winner is None:
                continue
            assert isinstance(winner.spec, HybridSpec)
            assert winner.spec.n_qubits <= 5
            assert winner.spec.n_layers <= 6
