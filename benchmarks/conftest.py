"""Shared fixtures for the benchmark suite.

The figure-level benchmarks all need protocol results; they are computed
once per session under the ``smoke`` profile and shared through a cache
directory, so `pytest benchmarks/ --benchmark-only` stays minutes-scale.
Set ``REPRO_BENCH_PROFILE=reduced`` to regenerate the EXPERIMENTS.md
numbers instead (laptop-hour scale).
"""

from __future__ import annotations

import os

import pytest

from repro.backends import active_backend
from repro.experiments.runner import get_profile, run_family_cached


@pytest.fixture(autouse=True)
def _record_backend(request):
    """Stamp every benchmark entry with the array backend that ran it.

    ``run_benchmarks.condense`` copies ``extra_info["backend"]`` into
    the committed ``BENCH_<rev>.json`` snapshot so the regression check
    never mistakes a backend switch for a same-backend perf delta.
    Benchmarks that select a backend explicitly (``test_backend_sweep``)
    overwrite this default with their parametrized name.
    """
    if "benchmark" in request.fixturenames:
        request.getfixturevalue("benchmark").extra_info.setdefault(
            "backend", active_backend().name
        )
    yield


def bench_profile_name() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "smoke")


@pytest.fixture(scope="session")
def bench_profile():
    return get_profile(bench_profile_name())


@pytest.fixture(scope="session")
def protocol_cache(tmp_path_factory, bench_profile):
    """Cache directory pre-populated with all three family protocols."""
    cache_dir = tmp_path_factory.mktemp("bench-protocols")
    for family in ("classical", "bel", "sel"):
        run_family_cached(family, bench_profile, cache_dir=cache_dir)
    return cache_dir


@pytest.fixture(scope="session")
def protocol_results(protocol_cache, bench_profile):
    """The three family results, loaded from the session cache."""
    return {
        family: run_family_cached(
            family, bench_profile, cache_dir=protocol_cache
        )
        for family in ("classical", "bel", "sel")
    }
