"""Cross-candidate stacked vs per-candidate grid-search wall clock.

A head-varied hybrid search space holds many candidates whose compiled
tapes are structurally identical (same qubits/ansatz/depth, different
classical heads).  With candidate stacking the sequential search trains
each tape-structure group as **one** fused ``(C*R*B, 2**n)`` sweep
(`repro.nn.stacked.stack_candidates` via
`repro.runtime.jobs.execute_candidates`) instead of one run-stacked
sweep per candidate.

Two benchmarks pin the issue's acceptance target — stacked at least
1.5x faster on a multi-candidate search at the bench config (4
same-structure candidates, runs=2 as in the reduced profile, batch 8,
4 qubits, SEL depth 3) — into the committed ``BENCH_<rev>.json``
snapshots:

* ``test_per_candidate_search`` — candidate stacking off: one
  run-stacked sweep per candidate (the PR-4 execution mode).
* ``test_stacked_candidate_search`` — candidate stacking on: one fused
  sweep for the whole tape-structure group; bit-identical outcome.

A third pair covers **adaptive group sizing** on a 6-candidate group:
with an explicit, comfortably large ``memory_budget`` the speculator
grows the stacked group past the fixed ``MAX_GROUP_CANDIDATES`` cap of
4 (here: one fused 6-candidate sweep instead of 4 + 2), and the
snapshot asserts the adaptive outcome is bit-identical to the
fixed-cap one.  The acceptance bar is parity or better: fewer, larger
fused sweeps must never be slower than the capped split.
"""

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import HybridSpec
from repro.data import make_spiral, stratified_split

_RUNS = 2
_HEADS = ((), (4,), (6,), (8,))
_SPECS = [
    HybridSpec(n_features=4, n_qubits=4, n_layers=3, ansatz="sel", hidden=h)
    for h in _HEADS
]
# Six same-group-key candidates for the adaptive-sizing pair: one more
# than the fixed cap of 4 is not enough to show a regrouping, six gives
# the budget-grown path a single fused sweep vs the capped 4 + 2 split.
_WIDE_HEADS = ((), (3,), (4,), (5,), (6,), (8,))
_WIDE_SPECS = [
    HybridSpec(n_features=4, n_qubits=4, n_layers=3, ansatz="sel", hidden=h)
    for h in _WIDE_HEADS
]
# Explicit budget far above the workload's working set: growth past the
# fixed cap only engages for *explicit* budgets, and 1 TiB guarantees
# byte admission never splits the group on any bench machine.
_BIG_BUDGET = float(1 << 40)


def _settings(stacked: bool, memory_budget: float | None = None) -> TrainingSettings:
    return TrainingSettings(
        epochs=3,
        batch_size=8,
        runs=_RUNS,
        stacked_candidates=stacked,
        memory_budget=memory_budget,
    )


@pytest.fixture(scope="module")
def split():
    ds = make_spiral(4, n_points=96, noise=0.0, turns=0.8, seed=7)
    return stratified_split(ds, seed=7)


def _search(split, stacked: bool):
    # threshold 1.01 is unreachable: every candidate trains, so the
    # snapshot's delta is pure execution strategy on a fixed workload.
    return grid_search(
        _SPECS,
        split,
        threshold=1.01,
        settings=_settings(stacked),
        workers=1,
        seed=7,
    )


def _wide_search(split, memory_budget: float | None):
    return grid_search(
        _WIDE_SPECS,
        split,
        threshold=1.01,
        settings=_settings(stacked=True, memory_budget=memory_budget),
        workers=1,
        seed=7,
    )


class TestCandidateStackedSearch:
    def test_per_candidate_search(self, benchmark, split):
        outcome = benchmark.pedantic(
            lambda: _search(split, stacked=False), rounds=3, iterations=1
        )
        assert outcome.candidates_trained == len(_SPECS)

    def test_stacked_candidate_search(self, benchmark, split):
        outcome = benchmark.pedantic(
            lambda: _search(split, stacked=True), rounds=3, iterations=1
        )
        assert outcome.candidates_trained == len(_SPECS)
        # same outcome as the per-candidate mode — the snapshot's delta
        # is pure execution strategy
        reference = _search(split, stacked=False)
        for got, ref in zip(outcome.evaluated, reference.evaluated):
            assert got.spec == ref.spec
            assert got.train_accuracies == ref.train_accuracies
            assert got.val_accuracies == ref.val_accuracies
            assert got.epochs_run == ref.epochs_run


class TestAdaptiveGroupSizing:
    """Budget-grown 6-candidate fused sweep vs the fixed 4-cap split."""

    def test_fixed_cap_groups(self, benchmark, split):
        # No budget: default behaviour, the 6-candidate group is packed
        # as a 4-member fused sweep plus a 2-member one.
        outcome = benchmark.pedantic(
            lambda: _wide_search(split, memory_budget=None),
            rounds=3,
            iterations=1,
        )
        assert outcome.candidates_trained == len(_WIDE_SPECS)

    def test_budget_grown_group(self, benchmark, split):
        # Explicit 1 TiB budget: the speculator grows the group past
        # the fixed cap and trains all 6 candidates as one fused sweep.
        outcome = benchmark.pedantic(
            lambda: _wide_search(split, memory_budget=_BIG_BUDGET),
            rounds=3,
            iterations=1,
        )
        assert outcome.candidates_trained == len(_WIDE_SPECS)
        # bit-identical to the fixed-cap packing — group sizing is pure
        # execution strategy, never results
        reference = _wide_search(split, memory_budget=None)
        for got, ref in zip(outcome.evaluated, reference.evaluated):
            assert got.spec == ref.spec
            assert got.train_accuracies == ref.train_accuracies
            assert got.val_accuracies == ref.val_accuracies
            assert got.epochs_run == ref.epochs_run
