"""Cross-candidate stacked vs per-candidate grid-search wall clock.

A head-varied hybrid search space holds many candidates whose compiled
tapes are structurally identical (same qubits/ansatz/depth, different
classical heads).  With candidate stacking the sequential search trains
each tape-structure group as **one** fused ``(C*R*B, 2**n)`` sweep
(`repro.nn.stacked.stack_candidates` via
`repro.runtime.jobs.execute_candidates`) instead of one run-stacked
sweep per candidate.

Two benchmarks pin the issue's acceptance target — stacked at least
1.5x faster on a multi-candidate search at the bench config (4
same-structure candidates, runs=2 as in the reduced profile, batch 8,
4 qubits, SEL depth 3) — into the committed ``BENCH_<rev>.json``
snapshots:

* ``test_per_candidate_search`` — candidate stacking off: one
  run-stacked sweep per candidate (the PR-4 execution mode).
* ``test_stacked_candidate_search`` — candidate stacking on: one fused
  sweep for the whole tape-structure group; bit-identical outcome.
"""

import pytest

from repro.core.grid_search import TrainingSettings, grid_search
from repro.core.search_space import HybridSpec
from repro.data import make_spiral, stratified_split

_RUNS = 2
_HEADS = ((), (4,), (6,), (8,))
_SPECS = [
    HybridSpec(n_features=4, n_qubits=4, n_layers=3, ansatz="sel", hidden=h)
    for h in _HEADS
]


def _settings(stacked: bool) -> TrainingSettings:
    return TrainingSettings(
        epochs=3,
        batch_size=8,
        runs=_RUNS,
        stacked_candidates=stacked,
    )


@pytest.fixture(scope="module")
def split():
    ds = make_spiral(4, n_points=96, noise=0.0, turns=0.8, seed=7)
    return stratified_split(ds, seed=7)


def _search(split, stacked: bool):
    # threshold 1.01 is unreachable: every candidate trains, so the
    # snapshot's delta is pure execution strategy on a fixed workload.
    return grid_search(
        _SPECS,
        split,
        threshold=1.01,
        settings=_settings(stacked),
        workers=1,
        seed=7,
    )


class TestCandidateStackedSearch:
    def test_per_candidate_search(self, benchmark, split):
        outcome = benchmark.pedantic(
            lambda: _search(split, stacked=False), rounds=3, iterations=1
        )
        assert outcome.candidates_trained == len(_SPECS)

    def test_stacked_candidate_search(self, benchmark, split):
        outcome = benchmark.pedantic(
            lambda: _search(split, stacked=True), rounds=3, iterations=1
        )
        assert outcome.candidates_trained == len(_SPECS)
        # same outcome as the per-candidate mode — the snapshot's delta
        # is pure execution strategy
        reference = _search(split, stacked=False)
        for got, ref in zip(outcome.evaluated, reference.evaluated):
            assert got.spec == ref.spec
            assert got.train_accuracies == ref.train_accuracies
            assert got.val_accuracies == ref.val_accuracies
            assert got.epochs_run == ref.epochs_run
