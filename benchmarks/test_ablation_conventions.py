"""Ablation bench (beyond the paper): are the headline conclusions
robust to the FLOPs-counting convention?

The paper counts TF-profiler FLOPs; we re-evaluate the Fig. 10 rate
comparison under every convention in the library using the *paper's own
winning architectures* (so no training enters the ablation — this
isolates the accounting from the search).
"""

import pytest

from repro.core.comparison import rate_of_increase
from repro.flops import (
    CONVENTIONS,
    classical_model_flops,
    get_convention,
    hybrid_model_flops,
)

#: Architectures representative of the paper's winners at the low/high
#: complexity levels (classical sizes inferred from its parameter plots).
PAPER_WINNERS = {
    "classical": {10: (6,), 110: (4, 10)},
    "bel": {10: (3, 2), 110: (4, 4)},
    "sel": {10: (3, 2), 110: (3, 2)},
}


def flops_of(family, fs, convention):
    arch = PAPER_WINNERS[family][fs]
    if family == "classical":
        return classical_model_flops(fs, arch, convention=convention)
    return hybrid_model_flops(
        fs, arch[0], arch[1], ansatz=family, convention=convention
    )


class TestConventionAblation:
    @pytest.mark.parametrize("convention", sorted(CONVENTIONS))
    def test_sel_rate_lowest_under_every_convention(self, convention):
        rates = {
            family: rate_of_increase(
                flops_of(family, 10, convention),
                flops_of(family, 110, convention),
            )
            for family in PAPER_WINNERS
        }
        print(f"\n{convention}: " + ", ".join(
            f"{f}={100 * r:.1f}%" for f, r in rates.items()
        ))
        assert rates["sel"] < rates["bel"]
        assert rates["sel"] < rates["classical"]

    @pytest.mark.parametrize("convention", sorted(CONVENTIONS))
    def test_rate_table_bench(self, benchmark, convention):
        conv = get_convention(convention)

        def compute():
            return {
                family: rate_of_increase(
                    flops_of(family, 10, conv), flops_of(family, 110, conv)
                )
                for family in PAPER_WINNERS
            }

        rates = benchmark(compute)
        assert all(0 <= r <= 1 for r in rates.values())

    def test_paper_convention_reproduces_published_sel_rate_shape(self):
        """Under our counting the SEL rate lands well below the paper's
        53.1% (our simulator costs the quantum part higher, and that part
        is constant), preserving the direction of the claim."""
        rate = rate_of_increase(
            flops_of("sel", 10, "paper"), flops_of("sel", 110, "paper")
        )
        classical = rate_of_increase(
            flops_of("classical", 10, "paper"),
            flops_of("classical", 110, "paper"),
        )
        assert rate < 0.531 + 0.05
        assert classical > 0.80
