"""Benchmark E7 — paper Fig. 10: the headline rate-of-increase
comparison between classical, hybrid-BEL and hybrid-SEL models.

Paper claim ordering (FLOPs rates, low -> high complexity):
    SEL (53.1 %)  <  BEL (80.1 %)  <  classical (88.5 %).
We assert the structural part — SEL's rate is the lowest — which holds
because SEL's winning circuit stays small while its classical input
layer is a (features -> 3 qubits) bottleneck, whereas classical winners
grow both with features and in architecture.
"""

from repro.core.comparison import comparative_analysis
from repro.experiments import fig10_comparative


class TestFig10:
    def test_regenerate(self, benchmark, protocol_cache, bench_profile):
        results = benchmark.pedantic(
            fig10_comparative.run,
            args=(bench_profile,),
            kwargs=dict(cache_dir=protocol_cache),
            rounds=1,
            iterations=1,
        )
        analysis = fig10_comparative.analyze(results)
        print()
        print(fig10_comparative.render(analysis))
        assert set(analysis.flops) == {"classical", "bel", "sel"}

    def test_sel_flops_rate_is_lowest(self, protocol_results, bench_profile):
        import pytest

        if bench_profile.name == "smoke":
            pytest.skip("winner identity too noisy at smoke scale")
        analysis = comparative_analysis(
            [protocol_results[f] for f in ("classical", "bel", "sel")]
        )
        rates = {f: s.rate for f, s in analysis.flops.items()}
        assert rates["sel"] <= rates["classical"]
        assert rates["sel"] <= rates["bel"]

    def test_sel_needs_fewer_flops_at_high_complexity_than_classical(
        self, protocol_results, bench_profile
    ):
        import pytest

        if bench_profile.name == "smoke":
            pytest.skip("winner identity too noisy at smoke scale")
        analysis = comparative_analysis(
            [protocol_results[f] for f in ("classical", "sel")]
        )
        assert (
            analysis.flops["sel"].high < analysis.flops["classical"].high
            or analysis.flops["sel"].rate < analysis.flops["classical"].rate
        )
