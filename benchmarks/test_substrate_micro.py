"""Micro-benchmarks of the substrates: statevector simulation, gradient
backends, classical layers, dataset generation and FLOPs profiling.

These are the building blocks whose cost dominates the paper's protocol;
tracking them catches performance regressions in the simulator.
"""

import numpy as np
import pytest

from repro.data import make_spiral
from repro.flops import profile_model
from repro.hybrid import QuantumLayer, build_classical_model, build_hybrid_model
from repro.nn import Adam, CrossEntropy, Dense
from repro.quantum import (
    CompiledTape,
    adjoint_gradients,
    angle_embedding,
    apply_single_qubit,
    compiled_parameter_shift_gradients,
    expval_z,
    gates,
    parameter_shift_gradients,
    random_sel_weights,
    run,
    strongly_entangling_layers,
    zero_state,
)

RNG = np.random.default_rng(0)


class TestStatevector:
    def test_single_qubit_gate_batch256_5q(self, benchmark):
        state = zero_state(5, batch=256)
        mat = gates.rot(0.3, 0.9, -0.2)
        benchmark(apply_single_qubit, state, mat, 2)

    def test_sel_circuit_forward_batch64_4q(self, benchmark):
        x = RNG.uniform(-1, 1, (64, 4))
        w = random_sel_weights(2, 4, RNG)
        tape = angle_embedding(x, 4) + strongly_entangling_layers(w, 4)
        benchmark(run, tape, 4, 64)

    def test_expval_batch64_4q(self, benchmark):
        x = RNG.uniform(-1, 1, (64, 4))
        tape = angle_embedding(x, 4)
        state = run(tape, 4, 64)
        benchmark(expval_z, state)


class TestCompiledEngine:
    """The compiled engine against the reference executor on the same
    workloads — the acceptance numbers for the compile-once/execute-many
    engine (expect >= 2x on the SEL forward)."""

    def test_sel_compiled_forward_batch64_4q(self, benchmark):
        x = RNG.uniform(-1, 1, (64, 4))
        w = random_sel_weights(2, 4, RNG)
        tape = angle_embedding(x, 4) + strongly_entangling_layers(w, 4)
        engine = CompiledTape(tape, 4)
        flat = w.ravel()
        benchmark(engine.execute, x, flat)

    def test_sel_compiled_adjoint_batch32_3q(self, benchmark):
        """Forward (recorded) + compiled adjoint sweep per round, which is
        exactly one training step's quantum cost."""
        n_qubits, batch = 3, 32
        x = RNG.uniform(-1, 1, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, RNG)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        engine = CompiledTape(tape, n_qubits)
        flat = w.ravel()
        grad = RNG.standard_normal((batch, n_qubits))

        def step():
            engine.execute(inputs=x, weights=flat, record=True)
            return engine.adjoint_gradients(grad, n_qubits, w.size)

        benchmark(step)

    def test_sel_compiled_parameter_shift_batch32_3q(self, benchmark):
        n_qubits, batch = 3, 32
        x = RNG.uniform(-1, 1, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, RNG)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        engine = CompiledTape(tape, n_qubits)
        grad = RNG.standard_normal((batch, n_qubits))
        benchmark(
            compiled_parameter_shift_gradients,
            engine,
            grad,
            n_qubits,
            w.size,
            x,
            w.ravel(),
        )


class TestGradientBackends:
    @pytest.fixture()
    def sel_case(self):
        n_qubits, batch = 3, 32
        x = RNG.uniform(-1, 1, (batch, n_qubits))
        w = random_sel_weights(2, n_qubits, RNG)
        tape = angle_embedding(x, n_qubits) + strongly_entangling_layers(
            w, n_qubits
        )
        final = run(tape, n_qubits, batch)
        grad = RNG.standard_normal((batch, n_qubits))
        return tape, final, grad, n_qubits, batch, w.size

    def test_adjoint_backward(self, benchmark, sel_case):
        tape, final, grad, n_qubits, _, n_weights = sel_case
        benchmark(
            adjoint_gradients, tape, final, grad, n_qubits, n_weights
        )

    def test_parameter_shift_backward(self, benchmark, sel_case):
        """The hardware-style gradient: 2 executions per parameter —
        expect roughly an order of magnitude slower than adjoint."""
        tape, _, grad, n_qubits, batch, n_weights = sel_case
        benchmark(
            parameter_shift_gradients,
            tape,
            n_qubits,
            batch,
            grad,
            n_qubits,
            n_weights,
        )


class TestClassicalLayers:
    def test_dense_forward_110x10(self, benchmark):
        layer = Dense(110, 10, rng=RNG)
        x = RNG.standard_normal((256, 110))
        benchmark(layer.forward, x)

    def test_dense_backward(self, benchmark):
        layer = Dense(110, 10, rng=RNG)
        x = RNG.standard_normal((256, 110))
        g = RNG.standard_normal((256, 10))
        layer.forward(x, training=True)

        def step():
            layer.zero_grads()
            layer.backward(g)

        benchmark(step)


class TestTrainingSteps:
    @staticmethod
    def _one_epoch(model, x, y):
        loss = CrossEntropy()
        optimizer = Adam()
        for start in range(0, x.shape[0], 8):
            xb, yb = x[start : start + 8], y[start : start + 8]
            model.zero_grads()
            out = model.forward(xb, training=True)
            model.backward(loss.gradient(out, yb))
            optimizer.step(model.parameters(), model.gradients())

    def test_classical_epoch_10features(self, benchmark):
        x = RNG.standard_normal((120, 10))
        y = np.eye(3)[RNG.integers(3, size=120)]
        model = build_classical_model(10, (6,), rng=RNG)
        benchmark(self._one_epoch, model, x, y)

    def test_hybrid_sel_epoch_10features(self, benchmark):
        """The paper's key cost: simulating the quantum layer during
        training (the 'simulation overhead' of section I)."""
        x = RNG.standard_normal((120, 10))
        y = np.eye(3)[RNG.integers(3, size=120)]
        model = build_hybrid_model(10, 3, 2, ansatz="sel", rng=RNG)
        benchmark(self._one_epoch, model, x, y)


class TestDataAndProfiling:
    def test_spiral_generation_110_features(self, benchmark):
        benchmark(make_spiral, 110, n_points=1500, seed=1)

    def test_flops_profile_hybrid(self, benchmark):
        model = build_hybrid_model(110, 4, 4, ansatz="bel", rng=RNG)
        benchmark(profile_model, model)

    def test_quantum_layer_forward_scaling_5q(self, benchmark):
        layer = QuantumLayer(5, 10, ansatz="sel", rng=RNG)
        x = RNG.uniform(-1, 1, (64, 5))
        benchmark(layer.forward, x)
